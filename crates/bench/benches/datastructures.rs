//! Micro-benchmarks of the hot data structures: the shared-queue
//! register operations (every lock request runs 1+ of these), the
//! latency histogram, and the server lock table.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use netlock_proto::{ClientAddr, LockMode, Priority, TenantId, TxnId};
use netlock_sim::Histogram;
use netlock_switch::engine::{FcfsEngine, PassAllocator};
use netlock_switch::shared_queue::{SharedQueue, SharedQueueLayout};
use netlock_switch::slot::Slot;

fn slot(mode: LockMode, txn: u64) -> Slot {
    Slot {
        valid: true,
        mode,
        txn: TxnId(txn),
        client: ClientAddr(txn as u32),
        tenant: TenantId(0),
        priority: Priority(0),
        issued_at_ns: 0,
        granted: false,
        granted_at_ns: 0,
    }
}

fn bench_shared_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("shared_queue");
    g.bench_function("enqueue_dequeue_cycle", |b| {
        let mut q = SharedQueue::new(&SharedQueueLayout::small(4, 4_096, 64));
        q.cp_set_region(0, 0, 1_024);
        let mut pa = PassAllocator::new();
        let mut grants = Vec::new();
        let mut i = 0u64;
        b.iter(|| {
            FcfsEngine::acquire(&mut q, &mut pa, 0, slot(LockMode::Exclusive, i));
            grants.clear();
            FcfsEngine::release(&mut q, &mut pa, 0, LockMode::Exclusive, &mut grants);
            i += 1;
            black_box(grants.len())
        });
    });
    g.bench_function("shared_cascade_release", |b| {
        // Measure the multi-grant resubmit cascade: X holder + 16
        // queued S, release the X.
        b.iter_batched(
            || {
                let mut q = SharedQueue::new(&SharedQueueLayout::small(4, 4_096, 64));
                q.cp_set_region(0, 0, 1_024);
                let mut pa = PassAllocator::new();
                FcfsEngine::acquire(&mut q, &mut pa, 0, slot(LockMode::Exclusive, 0));
                for i in 1..=16 {
                    FcfsEngine::acquire(&mut q, &mut pa, 0, slot(LockMode::Shared, i));
                }
                (q, pa)
            },
            |(mut q, mut pa)| {
                let mut grants = Vec::new();
                FcfsEngine::release(&mut q, &mut pa, 0, LockMode::Exclusive, &mut grants);
                black_box(grants.len())
            },
            criterion::BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let mut g = c.benchmark_group("histogram");
    g.bench_function("record", |b| {
        let mut h = Histogram::new();
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(black_box(v % 10_000_000));
        });
    });
    g.bench_function("quantile", |b| {
        let mut h = Histogram::new();
        for i in 0..100_000u64 {
            h.record(i * 37 % 10_000_000);
        }
        b.iter(|| black_box(h.quantile(0.99)));
    });
    g.finish();
}

fn bench_lock_table(c: &mut Criterion) {
    use netlock_proto::{LockId, LockRequest};
    use netlock_server::LockTable;
    let mut g = c.benchmark_group("server_lock_table");
    g.bench_function("acquire_release_cycle", |b| {
        let mut t = LockTable::new();
        let mut grants = Vec::new();
        let mut i = 0u64;
        b.iter(|| {
            let req = LockRequest {
                lock: LockId((i % 512) as u32),
                mode: LockMode::Exclusive,
                txn: TxnId(i),
                client: ClientAddr(1),
                tenant: TenantId(0),
                priority: Priority(0),
                issued_at_ns: i,
            };
            t.acquire(req);
            grants.clear();
            t.release(req.lock, req.txn, &mut grants);
            i += 1;
            black_box(grants.len())
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_shared_queue,
    bench_histogram,
    bench_lock_table
);
criterion_main!(benches);
