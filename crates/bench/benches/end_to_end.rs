//! End-to-end simulation benchmarks: scaled-down versions of each
//! figure's experiment, so `cargo bench` tracks the wall-clock cost of
//! the whole reproduction and any performance regression in the
//! simulator or the systems under test.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use netlock_bench::{fig08, fig09, fig10, fig13, fig14, fig15, Runner, TimeScale};
use netlock_sim::SimDuration;

fn tiny() -> TimeScale {
    TimeScale {
        warmup: SimDuration::from_millis(1),
        measure: SimDuration::from_millis(2),
    }
}

fn seq() -> Runner {
    Runner::with_threads(1)
}

fn bench_micro(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    g.bench_function("fig08a_shared_point", |b| {
        b.iter(|| black_box(fig08::run_8a(&seq(), tiny()).len()));
    });
    g.bench_function("fig09_switch_point", |b| {
        b.iter(|| black_box(fig09::run_switch(fig09::Workload::Shared, tiny())));
    });
    g.finish();
}

fn bench_tpcc(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end_tpcc");
    g.sample_size(10);
    g.bench_function("fig10_netlock_low_contention", |b| {
        b.iter(|| {
            let results = fig10::run_comparison(&seq(), 2, 2, false, tiny());
            black_box(results.len())
        });
    });
    g.bench_function("fig13_knapsack_point", |b| {
        b.iter(|| black_box(fig13::run_policy(false, tiny()).stats.txns));
    });
    g.bench_function("fig14_memory_point", |b| {
        b.iter(|| {
            black_box(fig14::run_think_sweep(&seq(), SimDuration::ZERO, &[1_000], tiny()).len())
        });
    });
    g.bench_function("fig15_failure_timeline", |b| {
        b.iter(|| {
            let r = fig15::run_failure(
                SimDuration::from_millis(100),
                SimDuration::from_millis(200),
                SimDuration::from_millis(100),
                SimDuration::from_millis(500),
            );
            black_box(r.series.len())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_micro, bench_tpcc);
criterion_main!(benches);
