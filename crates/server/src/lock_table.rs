//! The server-side lock table.
//!
//! A classic centralized lock manager: per-lock holder set plus a FIFO
//! wait queue, shared/exclusive modes, FCFS grant order (matching the
//! switch's policy so a lock behaves identically wherever it lives).
//!
//! This table is also the *reference model* the property tests compare
//! the switch data-plane engine against: it is written for clarity, with
//! explicit holder tracking, no register-array constraints.

use std::collections::{HashMap, VecDeque};

use netlock_proto::{LockId, LockMode, LockRequest, TxnId};

/// A current holder of a lock.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Holder {
    /// Holding transaction.
    pub txn: TxnId,
    /// Held mode.
    pub mode: LockMode,
    /// The original request (for re-notification and lease bookkeeping).
    pub req: LockRequest,
}

/// Per-lock state.
#[derive(Clone, Debug, Default)]
pub struct LockState {
    holders: Vec<Holder>,
    waiters: VecDeque<LockRequest>,
    /// Arrivals since the last stats harvest (`r_i`).
    pub req_count: u64,
    /// High-water mark of outstanding requests (`c_i`).
    pub max_outstanding: u32,
}

impl LockState {
    /// Current holders.
    pub fn holders(&self) -> &[Holder] {
        &self.holders
    }

    /// Queued waiters in FIFO order.
    pub fn waiters(&self) -> impl Iterator<Item = &LockRequest> {
        self.waiters.iter()
    }

    /// Holders + waiters.
    pub fn outstanding(&self) -> usize {
        self.holders.len() + self.waiters.len()
    }

    /// True when nothing holds or waits.
    pub fn is_idle(&self) -> bool {
        self.holders.is_empty() && self.waiters.is_empty()
    }

    fn can_grant(&self, mode: LockMode) -> bool {
        if !self.waiters.is_empty() {
            // FCFS: nobody bypasses the queue.
            return false;
        }
        match mode {
            LockMode::Shared => self.holders.iter().all(|h| h.mode == LockMode::Shared),
            LockMode::Exclusive => self.holders.is_empty(),
        }
    }
}

/// Result of an acquire against the lock table.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TableAcquire {
    /// Granted immediately.
    Granted,
    /// Queued behind incompatible requests.
    Queued,
}

/// The lock table.
#[derive(Clone, Debug, Default)]
pub struct LockTable {
    locks: HashMap<LockId, LockState>,
}

impl LockTable {
    /// An empty table.
    pub fn new() -> LockTable {
        LockTable::default()
    }

    /// State for one lock, if it has ever been touched.
    pub fn get(&self, lock: LockId) -> Option<&LockState> {
        self.locks.get(&lock)
    }

    /// Number of locks with state.
    pub fn len(&self) -> usize {
        self.locks.len()
    }

    /// True if no lock has state.
    pub fn is_empty(&self) -> bool {
        self.locks.is_empty()
    }

    /// Process an acquire. FCFS: granted only if compatible with the
    /// holders *and* no one is already waiting.
    pub fn acquire(&mut self, req: LockRequest) -> TableAcquire {
        let st = self.locks.entry(req.lock).or_default();
        st.req_count += 1;
        let out = if st.can_grant(req.mode) {
            st.holders.push(Holder {
                txn: req.txn,
                mode: req.mode,
                req,
            });
            TableAcquire::Granted
        } else {
            st.waiters.push_back(req);
            TableAcquire::Queued
        };
        st.max_outstanding = st.max_outstanding.max(st.outstanding() as u32);
        out
    }

    /// Process a release; appends the requests granted as a result, in
    /// grant order, to `granted` (which is NOT cleared — the caller
    /// owns and reuses the buffer). Unknown `(lock, txn)` pairs are
    /// ignored (stale or duplicate releases), appending nothing.
    pub fn release(&mut self, lock: LockId, txn: TxnId, granted: &mut Vec<LockRequest>) {
        let Some(st) = self.locks.get_mut(&lock) else {
            return;
        };
        let Some(pos) = st.holders.iter().position(|h| h.txn == txn) else {
            return;
        };
        st.holders.swap_remove(pos);
        Self::promote(st, granted);
    }

    /// Force-release every holder of `lock` whose request is older than
    /// `now_ns - lease_ns` (lease expiry). Appends newly granted
    /// requests to `granted` (not cleared; caller owns the buffer).
    pub fn expire_leases(
        &mut self,
        lock: LockId,
        now_ns: u64,
        lease_ns: u64,
        granted: &mut Vec<LockRequest>,
    ) {
        let Some(st) = self.locks.get_mut(&lock) else {
            return;
        };
        let before = st.holders.len();
        st.holders
            .retain(|h| now_ns.saturating_sub(h.req.issued_at_ns) <= lease_ns);
        if st.holders.len() == before {
            return;
        }
        Self::promote(st, granted);
    }

    /// Locks with any state, for sweep iteration. Appends the ids in
    /// sorted order to `out` (which is NOT cleared — the caller owns and
    /// reuses the buffer, matching the `ActionBuf` zero-alloc
    /// convention used throughout the hot paths).
    pub fn touched_locks(&self, out: &mut Vec<LockId>) {
        let start = out.len();
        out.extend(self.locks.keys().copied());
        out[start..].sort();
    }

    /// Grant from the wait queue whatever is now compatible, appending
    /// each grant to `granted`.
    fn promote(st: &mut LockState, granted: &mut Vec<LockRequest>) {
        while let Some(next) = st.waiters.front() {
            let ok = match next.mode {
                LockMode::Shared => st.holders.iter().all(|h| h.mode == LockMode::Shared),
                LockMode::Exclusive => st.holders.is_empty(),
            };
            if !ok {
                break;
            }
            let req = st.waiters.pop_front().expect("front exists");
            st.holders.push(Holder {
                txn: req.txn,
                mode: req.mode,
                req,
            });
            granted.push(req);
        }
    }

    /// Harvest and reset `(r_i, c_i)` for every touched lock.
    pub fn take_stats(&mut self) -> Vec<(LockId, u64, u32)> {
        let mut out: Vec<(LockId, u64, u32)> = self
            .locks
            .iter_mut()
            .map(|(&lock, st)| {
                let s = (lock, st.req_count, st.max_outstanding.max(1));
                st.req_count = 0;
                st.max_outstanding = st.outstanding() as u32;
                s
            })
            .collect();
        out.sort_by_key(|&(lock, _, _)| lock);
        out
    }

    /// Remove a lock's state entirely, returning any holders + waiters
    /// (used when transferring a lock to the switch).
    pub fn evict(&mut self, lock: LockId) -> Option<LockState> {
        self.locks.remove(&lock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlock_proto::{ClientAddr, Priority, TenantId};

    /// Collect-style shims over the out-buffer API for test brevity.
    fn release(t: &mut LockTable, lock: LockId, txn: TxnId) -> Vec<LockRequest> {
        let mut granted = Vec::new();
        t.release(lock, txn, &mut granted);
        granted
    }

    fn expire(t: &mut LockTable, lock: LockId, now_ns: u64, lease_ns: u64) -> Vec<LockRequest> {
        let mut granted = Vec::new();
        t.expire_leases(lock, now_ns, lease_ns, &mut granted);
        granted
    }

    fn req(lock: u32, mode: LockMode, txn: u64) -> LockRequest {
        LockRequest {
            lock: LockId(lock),
            mode,
            txn: TxnId(txn),
            client: ClientAddr(txn as u32),
            tenant: TenantId(0),
            priority: Priority(0),
            issued_at_ns: txn, // issue time = txn id, convenient for leases
        }
    }

    #[test]
    fn exclusive_serializes() {
        let mut t = LockTable::new();
        assert_eq!(
            t.acquire(req(1, LockMode::Exclusive, 1)),
            TableAcquire::Granted
        );
        assert_eq!(
            t.acquire(req(1, LockMode::Exclusive, 2)),
            TableAcquire::Queued
        );
        let g = release(&mut t, LockId(1), TxnId(1));
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].txn, TxnId(2));
    }

    #[test]
    fn shared_coexist() {
        let mut t = LockTable::new();
        assert_eq!(
            t.acquire(req(1, LockMode::Shared, 1)),
            TableAcquire::Granted
        );
        assert_eq!(
            t.acquire(req(1, LockMode::Shared, 2)),
            TableAcquire::Granted
        );
        assert_eq!(t.get(LockId(1)).unwrap().holders().len(), 2);
    }

    #[test]
    fn fcfs_no_shared_bypass() {
        let mut t = LockTable::new();
        t.acquire(req(1, LockMode::Shared, 1));
        t.acquire(req(1, LockMode::Exclusive, 2));
        // A shared request must not jump over the waiting exclusive.
        assert_eq!(t.acquire(req(1, LockMode::Shared, 3)), TableAcquire::Queued);
        let g = release(&mut t, LockId(1), TxnId(1));
        assert_eq!(g[0].txn, TxnId(2));
        let g = release(&mut t, LockId(1), TxnId(2));
        assert_eq!(g[0].txn, TxnId(3));
    }

    #[test]
    fn exclusive_release_grants_shared_run() {
        let mut t = LockTable::new();
        t.acquire(req(1, LockMode::Exclusive, 1));
        t.acquire(req(1, LockMode::Shared, 2));
        t.acquire(req(1, LockMode::Shared, 3));
        t.acquire(req(1, LockMode::Exclusive, 4));
        let g = release(&mut t, LockId(1), TxnId(1));
        let txns: Vec<u64> = g.iter().map(|r| r.txn.0).collect();
        assert_eq!(txns, vec![2, 3]);
    }

    #[test]
    fn shared_release_out_of_order_is_fine() {
        let mut t = LockTable::new();
        t.acquire(req(1, LockMode::Shared, 1));
        t.acquire(req(1, LockMode::Shared, 2));
        t.acquire(req(1, LockMode::Exclusive, 3));
        // Holder 2 releases before holder 1.
        assert!(release(&mut t, LockId(1), TxnId(2)).is_empty());
        let g = release(&mut t, LockId(1), TxnId(1));
        assert_eq!(g[0].txn, TxnId(3));
    }

    #[test]
    fn stale_release_ignored() {
        let mut t = LockTable::new();
        t.acquire(req(1, LockMode::Exclusive, 1));
        assert!(release(&mut t, LockId(1), TxnId(99)).is_empty());
        assert!(release(&mut t, LockId(2), TxnId(1)).is_empty());
        assert_eq!(t.get(LockId(1)).unwrap().holders().len(), 1);
    }

    #[test]
    fn lease_expiry_force_releases() {
        let mut t = LockTable::new();
        t.acquire(req(1, LockMode::Exclusive, 1)); // issued at t=1
        t.acquire(req(1, LockMode::Exclusive, 1000)); // waits
        let g = expire(&mut t, LockId(1), 500, 1_000);
        assert!(g.is_empty(), "lease not yet expired");
        let g = expire(&mut t, LockId(1), 5_000, 1_000);
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].txn, TxnId(1000));
    }

    #[test]
    fn stats_harvest_resets() {
        let mut t = LockTable::new();
        t.acquire(req(1, LockMode::Exclusive, 1));
        t.acquire(req(1, LockMode::Exclusive, 2));
        t.acquire(req(2, LockMode::Shared, 3));
        let stats = t.take_stats();
        assert_eq!(stats, vec![(LockId(1), 2, 2), (LockId(2), 1, 1)]);
        let stats = t.take_stats();
        // Counts reset; contention floor = current outstanding.
        assert_eq!(stats[0], (LockId(1), 0, 2));
    }

    #[test]
    fn evict_returns_state() {
        let mut t = LockTable::new();
        t.acquire(req(1, LockMode::Exclusive, 1));
        t.acquire(req(1, LockMode::Exclusive, 2));
        let st = t.evict(LockId(1)).unwrap();
        assert_eq!(st.holders().len(), 1);
        assert_eq!(st.outstanding(), 2);
        assert!(t.get(LockId(1)).is_none());
    }

    #[test]
    fn idle_detection() {
        let mut t = LockTable::new();
        t.acquire(req(1, LockMode::Exclusive, 1));
        assert!(!t.get(LockId(1)).unwrap().is_idle());
        release(&mut t, LockId(1), TxnId(1));
        assert!(t.get(LockId(1)).unwrap().is_idle());
    }
}
