//! # netlock-server
//!
//! The lock-server model: the paper's DPDK-based server (2807 LoC of C)
//! as a simulation node.
//!
//! - [`lock_table`] — a classic FCFS shared/exclusive lock table with
//!   holder tracking and lease expiry; also serves as the reference
//!   model for property-testing the switch engine.
//! - [`cores`] — the multi-core RSS service model (8 cores × 444 ns ≈
//!   the paper's measured 18 MRPS per server).
//! - [`node`] — the sim node: owned locks, q2 overflow buffering for
//!   switch-resident locks, and the migration handshake.

#![warn(missing_docs)]

pub mod cores;
pub mod lock_table;
pub mod node;

pub use cores::{parse_calibrated_ns, CoreModel, ServiceModel, PAPER_SERVICE_NS};
pub use lock_table::{Holder, LockState, LockTable, TableAcquire};
pub use node::{ServerConfig, ServerNode, ServerStats};
