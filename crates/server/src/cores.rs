//! Multi-core CPU model with RSS dispatch.
//!
//! The paper's lock server uses DPDK with Receive Side Scaling: the NIC
//! hashes each lock request to a core's RX queue, so requests for one
//! lock always hit the same core (no cross-core locking) and a server
//! scales with cores until the NIC limit (~18 MRPS at 8 cores in their
//! testbed, i.e. ≈444 ns of CPU per request at saturation).
//!
//! The model keeps one `busy_until` horizon per core: a request starts at
//! `max(arrival, busy_until)` and completes `service_ns` later. State
//! changes apply at arrival (per-lock ordering is preserved because RSS
//! pins a lock to one core and arrivals are FIFO), while *outputs* carry
//! the queueing + service delay.

use netlock_proto::LockId;

/// The per-core service model.
#[derive(Clone, Debug)]
pub struct CoreModel {
    busy_until: Vec<u64>,
    service_ns: u64,
    busy_ns: u64,
    processed: u64,
}

impl CoreModel {
    /// `cores` cores, each spending `service_ns` per request.
    pub fn new(cores: usize, service_ns: u64) -> CoreModel {
        assert!(cores > 0, "need at least one core");
        CoreModel {
            busy_until: vec![0; cores],
            service_ns,
            busy_ns: 0,
            processed: 0,
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.busy_until.len()
    }

    /// RSS hash: which core handles `lock`.
    #[inline]
    pub fn core_of(&self, lock: LockId) -> usize {
        // Fibonacci hashing — cheap, well-spread for sequential ids.
        (lock.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) as usize % self.busy_until.len()
    }

    /// Account one request for `lock` arriving at `now_ns`; returns the
    /// completion time (≥ `now_ns + service_ns`).
    pub fn process(&mut self, lock: LockId, now_ns: u64) -> u64 {
        let core = self.core_of(lock);
        let start = self.busy_until[core].max(now_ns);
        let done = start + self.service_ns;
        self.busy_until[core] = done;
        self.busy_ns += self.service_ns;
        self.processed += 1;
        done
    }

    /// Total CPU-busy nanoseconds across cores.
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns
    }

    /// Requests processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Utilization over a window of `elapsed_ns` (0..=1 per core basis).
    pub fn utilization(&self, elapsed_ns: u64) -> f64 {
        if elapsed_ns == 0 {
            return 0.0;
        }
        self.busy_ns as f64 / (elapsed_ns as f64 * self.busy_until.len() as f64)
    }

    /// Max sustainable request rate (requests/second).
    pub fn capacity_rps(&self) -> f64 {
        if self.service_ns == 0 {
            f64::INFINITY
        } else {
            self.busy_until.len() as f64 * 1e9 / self.service_ns as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_lock_serializes_on_one_core() {
        let mut m = CoreModel::new(4, 100);
        let l = LockId(7);
        let t1 = m.process(l, 0);
        let t2 = m.process(l, 0);
        let t3 = m.process(l, 0);
        assert_eq!(t1, 100);
        assert_eq!(t2, 200);
        assert_eq!(t3, 300);
    }

    #[test]
    fn different_cores_run_in_parallel() {
        let mut m = CoreModel::new(8, 100);
        // Find two locks on different cores.
        let a = LockId(0);
        let b = (1..100)
            .map(LockId)
            .find(|&l| m.core_of(l) != m.core_of(a))
            .expect("some lock maps elsewhere");
        assert_eq!(m.process(a, 0), 100);
        assert_eq!(m.process(b, 0), 100, "parallel cores don't queue");
    }

    #[test]
    fn idle_gap_resets_start_time() {
        let mut m = CoreModel::new(1, 100);
        assert_eq!(m.process(LockId(1), 0), 100);
        assert_eq!(m.process(LockId(1), 1_000), 1_100);
    }

    #[test]
    fn capacity_matches_paper_scale() {
        // 8 cores at 222 ns/message ≈ 36 M messages/s ≈ 18 M lock
        // requests/s once each grant's release is accounted for.
        let m = CoreModel::new(8, 222);
        let msgs = m.capacity_rps();
        assert!((35.9e6..36.1e6).contains(&msgs), "msgs = {msgs}");
    }

    #[test]
    fn utilization_accounting() {
        let mut m = CoreModel::new(2, 100);
        m.process(LockId(1), 0);
        m.process(LockId(2), 0);
        assert_eq!(m.busy_ns(), 200);
        assert_eq!(m.processed(), 2);
        assert!((m.utilization(1_000) - 0.1).abs() < 1e-9);
        assert_eq!(m.utilization(0), 0.0);
    }

    #[test]
    fn rss_spreads_locks() {
        let m = CoreModel::new(8, 100);
        let mut hits = [0u32; 8];
        for i in 0..8_000 {
            hits[m.core_of(LockId(i))] += 1;
        }
        for (c, &h) in hits.iter().enumerate() {
            assert!(
                (700..1300).contains(&h),
                "core {c} got {h} of 8000 — RSS skew"
            );
        }
    }
}
