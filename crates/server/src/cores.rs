//! Multi-core CPU model with RSS dispatch.
//!
//! The paper's lock server uses DPDK with Receive Side Scaling: the NIC
//! hashes each lock request to a core's RX queue, so requests for one
//! lock always hit the same core (no cross-core locking) and a server
//! scales with cores until the NIC limit (~18 MRPS at 8 cores in their
//! testbed, i.e. ≈444 ns of CPU per request at saturation).
//!
//! The model keeps one `busy_until` horizon per core: a request starts at
//! `max(arrival, busy_until)` and completes `service_ns` later. State
//! changes apply at arrival (per-lock ordering is preserved because RSS
//! pins a lock to one core and arrivals are FIFO), while *outputs* carry
//! the queueing + service delay.

use std::sync::OnceLock;

use netlock_proto::LockId;

/// The paper's per-message CPU cost: 222 ns ≈ 18 M lock requests/s per
/// 8-core server once each grant's release is accounted for. This is
/// the literature constant every committed figure TSV and chaos digest
/// is pinned to.
pub const PAPER_SERVICE_NS: u64 = 222;

/// Where the per-message service cost comes from.
///
/// The simulation's server model charges a constant per message. By
/// default that constant is the paper's ([`PAPER_SERVICE_NS`]); the
/// `dlock_bench` harness *measures* the sequential lock-table cost on
/// this machine's cores and writes it to `BENCH_dlock.json` as
/// `calibrated_service_ns`, and an opt-in flag feeds that measurement
/// back in so capacity studies reflect local hardware instead of the
/// paper's testbed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ServiceModel {
    /// The paper's constant ([`PAPER_SERVICE_NS`]). The default:
    /// committed artifacts stay byte-identical.
    Paper,
    /// A measured per-message cost in nanoseconds.
    CalibratedNs(u64),
}

impl ServiceModel {
    /// The per-message cost this model charges.
    pub fn service_ns(&self) -> u64 {
        match *self {
            ServiceModel::Paper => PAPER_SERVICE_NS,
            ServiceModel::CalibratedNs(ns) => ns.max(1),
        }
    }

    /// The model selected by the environment (cached after first call):
    ///
    /// - `NETLOCK_CALIBRATED_NS=<ns>` — use that cost directly;
    /// - `NETLOCK_CALIBRATED=<path>` — read `calibrated_service_ns`
    ///   from that report (`=1` / `=true` reads `BENCH_dlock.json` in
    ///   the current directory);
    /// - neither (or an unreadable/unparseable report) — [`Paper`].
    ///
    /// The `--calibrated` flag of the figure binaries sets the
    /// environment before any server is built.
    ///
    /// [`Paper`]: ServiceModel::Paper
    pub fn from_env() -> ServiceModel {
        static CACHE: OnceLock<ServiceModel> = OnceLock::new();
        *CACHE.get_or_init(|| {
            if let Ok(v) = std::env::var("NETLOCK_CALIBRATED_NS") {
                if let Ok(ns) = v.trim().parse::<u64>() {
                    if ns > 0 {
                        return ServiceModel::CalibratedNs(ns);
                    }
                }
            }
            if let Ok(v) = std::env::var("NETLOCK_CALIBRATED") {
                let path = match v.trim() {
                    "" | "0" | "false" => return ServiceModel::Paper,
                    "1" | "true" => "BENCH_dlock.json",
                    p => p,
                };
                if let Ok(text) = std::fs::read_to_string(path) {
                    if let Some(ns) = parse_calibrated_ns(&text) {
                        return ServiceModel::CalibratedNs(ns);
                    }
                }
            }
            ServiceModel::Paper
        })
    }
}

/// Extract `"calibrated_service_ns": <number>` from a `BENCH_dlock.json`
/// report without a JSON parser (the workspace builds offline, no
/// serde). Returns `None` when the field is missing or malformed.
pub fn parse_calibrated_ns(text: &str) -> Option<u64> {
    let key = "\"calibrated_service_ns\"";
    let rest = &text[text.find(key)? + key.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.'))
        .unwrap_or(rest.len());
    let ns = rest[..end].parse::<f64>().ok()?;
    if ns.is_finite() && ns >= 1.0 {
        Some(ns.round() as u64)
    } else {
        None
    }
}

/// The per-core service model.
#[derive(Clone, Debug)]
pub struct CoreModel {
    busy_until: Vec<u64>,
    service_ns: u64,
    busy_ns: u64,
    processed: u64,
}

impl CoreModel {
    /// `cores` cores, each spending `service_ns` per request.
    pub fn new(cores: usize, service_ns: u64) -> CoreModel {
        assert!(cores > 0, "need at least one core");
        CoreModel {
            busy_until: vec![0; cores],
            service_ns,
            busy_ns: 0,
            processed: 0,
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.busy_until.len()
    }

    /// RSS hash: which core handles `lock`.
    #[inline]
    pub fn core_of(&self, lock: LockId) -> usize {
        // Fibonacci hashing — cheap, well-spread for sequential ids.
        (lock.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) as usize % self.busy_until.len()
    }

    /// Account one request for `lock` arriving at `now_ns`; returns the
    /// completion time (≥ `now_ns + service_ns`).
    pub fn process(&mut self, lock: LockId, now_ns: u64) -> u64 {
        let core = self.core_of(lock);
        let start = self.busy_until[core].max(now_ns);
        let done = start + self.service_ns;
        self.busy_until[core] = done;
        self.busy_ns += self.service_ns;
        self.processed += 1;
        done
    }

    /// Total CPU-busy nanoseconds across cores.
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns
    }

    /// Requests processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Utilization over a window of `elapsed_ns` (0..=1 per core basis).
    pub fn utilization(&self, elapsed_ns: u64) -> f64 {
        if elapsed_ns == 0 {
            return 0.0;
        }
        self.busy_ns as f64 / (elapsed_ns as f64 * self.busy_until.len() as f64)
    }

    /// Max sustainable request rate (requests/second).
    pub fn capacity_rps(&self) -> f64 {
        if self.service_ns == 0 {
            f64::INFINITY
        } else {
            self.busy_until.len() as f64 * 1e9 / self.service_ns as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_lock_serializes_on_one_core() {
        let mut m = CoreModel::new(4, 100);
        let l = LockId(7);
        let t1 = m.process(l, 0);
        let t2 = m.process(l, 0);
        let t3 = m.process(l, 0);
        assert_eq!(t1, 100);
        assert_eq!(t2, 200);
        assert_eq!(t3, 300);
    }

    #[test]
    fn different_cores_run_in_parallel() {
        let mut m = CoreModel::new(8, 100);
        // Find two locks on different cores.
        let a = LockId(0);
        let b = (1..100)
            .map(LockId)
            .find(|&l| m.core_of(l) != m.core_of(a))
            .expect("some lock maps elsewhere");
        assert_eq!(m.process(a, 0), 100);
        assert_eq!(m.process(b, 0), 100, "parallel cores don't queue");
    }

    #[test]
    fn idle_gap_resets_start_time() {
        let mut m = CoreModel::new(1, 100);
        assert_eq!(m.process(LockId(1), 0), 100);
        assert_eq!(m.process(LockId(1), 1_000), 1_100);
    }

    #[test]
    fn capacity_matches_paper_scale() {
        // 8 cores at 222 ns/message ≈ 36 M messages/s ≈ 18 M lock
        // requests/s once each grant's release is accounted for.
        let m = CoreModel::new(8, 222);
        let msgs = m.capacity_rps();
        assert!((35.9e6..36.1e6).contains(&msgs), "msgs = {msgs}");
    }

    #[test]
    fn utilization_accounting() {
        let mut m = CoreModel::new(2, 100);
        m.process(LockId(1), 0);
        m.process(LockId(2), 0);
        assert_eq!(m.busy_ns(), 200);
        assert_eq!(m.processed(), 2);
        assert!((m.utilization(1_000) - 0.1).abs() < 1e-9);
        assert_eq!(m.utilization(0), 0.0);
    }

    #[test]
    fn service_model_costs() {
        assert_eq!(ServiceModel::Paper.service_ns(), PAPER_SERVICE_NS);
        assert_eq!(ServiceModel::CalibratedNs(950).service_ns(), 950);
        // A degenerate calibration can never stall the core model.
        assert_eq!(ServiceModel::CalibratedNs(0).service_ns(), 1);
    }

    #[test]
    fn parse_calibrated_ns_from_report() {
        let report = r#"{
  "schema": "netlock-bench-dlock/1",
  "seq_lock_table_ns_per_op": 81.25,
  "calibrated_service_ns": 81.25,
  "backends": []
}"#;
        assert_eq!(parse_calibrated_ns(report), Some(81));
        assert_eq!(parse_calibrated_ns("{}"), None);
        assert_eq!(parse_calibrated_ns("\"calibrated_service_ns\": x"), None);
        assert_eq!(parse_calibrated_ns("\"calibrated_service_ns\": 0.2"), None);
        assert_eq!(
            parse_calibrated_ns("{\"calibrated_service_ns\":  1500}"),
            Some(1500)
        );
    }

    #[test]
    fn rss_spreads_locks() {
        let m = CoreModel::new(8, 100);
        let mut hits = [0u32; 8];
        for i in 0..8_000 {
            hits[m.core_of(LockId(i))] += 1;
        }
        for (c, &h) in hits.iter().enumerate() {
            assert!(
                (700..1300).contains(&h),
                "core {c} got {h} of 8000 — RSS skew"
            );
        }
    }
}
