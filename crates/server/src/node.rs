//! The lock-server simulation node.
//!
//! Handles (1) locks it owns, with the full [`LockTable`] semantics,
//! (2) q2 overflow buffering for switch-resident locks (§4.3), and
//! (3) the migration handshake (CtrlDemote / CtrlPromote /
//! CtrlPromoteReady). All request processing is charged to the RSS
//! multi-core model.

use std::collections::{HashMap, VecDeque};

use netlock_proto::{GrantMsg, Grantor, LockId, LockRequest, NetLockMsg, ReleaseRequest};
use netlock_sim::{Context, Node, NodeId, Packet, SimDuration};

use crate::cores::CoreModel;
use crate::lock_table::{LockTable, TableAcquire};

/// Timer token for the lease sweep.
const TIMER_LEASE_SWEEP: u64 = 1;

/// Who currently decides grants for a lock, from this server's view.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Ownership {
    /// This server grants (server-resident lock).
    Owned,
    /// The switch grants; this server only buffers overflow in q2.
    SwitchOwned,
    /// Mid-promotion: grants paused, new arrivals buffered for transfer.
    Promoting,
}

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// CPU cores (the paper's testbed: 8).
    pub cores: usize,
    /// CPU time per lock *message* (acquires and releases both cost
    /// CPU). 222 ns/message ≈ the paper's measured 18 M lock requests/s
    /// per 8-core server, since each granted request also brings a
    /// release to process. The default resolves through
    /// [`crate::cores::ServiceModel::from_env`], so an opt-in
    /// calibration (`--calibrated` / `NETLOCK_CALIBRATED*`) substitutes
    /// the cost `dlock_bench` measured on this machine; with the
    /// environment unset it is exactly the paper constant.
    pub service: SimDuration,
    /// Lease duration for owned locks (zero disables sweeping).
    pub lease: SimDuration,
    /// Lease sweep interval.
    pub sweep_tick: SimDuration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            cores: 8,
            service: SimDuration::from_nanos(crate::cores::ServiceModel::from_env().service_ns()),
            lease: SimDuration::from_millis(10),
            sweep_tick: SimDuration::from_millis(1),
        }
    }
}

/// Server counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// Acquires granted by this server.
    pub grants: u64,
    /// Acquires queued in the server lock table.
    pub queued: u64,
    /// Requests buffered into q2.
    pub q2_buffered: u64,
    /// Requests pushed back to the switch.
    pub q2_pushed: u64,
    /// Releases for locks this server does not own.
    pub spurious_releases: u64,
    /// Grants issued by the lease sweeper.
    pub lease_grants: u64,
    /// Peak q2 depth across locks.
    pub q2_peak_depth: usize,
}

/// The lock server.
pub struct ServerNode {
    table: LockTable,
    q2: HashMap<LockId, VecDeque<LockRequest>>,
    ownership: HashMap<LockId, Ownership>,
    promote_buf: HashMap<LockId, Vec<LockRequest>>,
    cores: CoreModel,
    cfg: ServerConfig,
    /// The ToR switch (destination for Push / CtrlPromoteReady).
    switch: NodeId,
    /// Failover grace deadline (ns): until then, acquires are buffered
    /// rather than granted, so leases on locks granted by a failed
    /// predecessor can expire first (§4.5: "the server waits for the
    /// leases to expire before granting the locks").
    grace_until_ns: u64,
    grace_buf: Vec<LockRequest>,
    /// Reusable grant out-buffer for `LockTable::release` /
    /// `expire_leases`: one allocation per node, not per release.
    grant_buf: Vec<LockRequest>,
    /// Reusable lock-id out-buffer for `LockTable::touched_locks`: one
    /// allocation per node, not per sweep tick.
    sweep_buf: Vec<LockId>,
    stats: ServerStats,
}

impl ServerNode {
    /// A server wired to its ToR switch.
    pub fn new(cfg: ServerConfig, switch: NodeId) -> ServerNode {
        ServerNode {
            table: LockTable::new(),
            q2: HashMap::new(),
            ownership: HashMap::new(),
            promote_buf: HashMap::new(),
            cores: CoreModel::new(cfg.cores, cfg.service.as_nanos()),
            cfg,
            switch,
            grace_until_ns: 0,
            grace_buf: Vec::new(),
            grant_buf: Vec::new(),
            sweep_buf: Vec::new(),
            stats: ServerStats::default(),
        }
    }

    /// Pre-declare a lock as owned by this server (rack setup).
    pub fn own_lock(&mut self, lock: LockId) {
        self.ownership.insert(lock, Ownership::Owned);
    }

    /// The configuration this server runs with.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Timer token of the lease sweep. After a crash-restart the sweep
    /// chain is broken (timers to a dead node are dropped); the harness
    /// re-arms it with `Simulator::inject_timer` using this token.
    pub const SWEEP_TIMER_TOKEN: u64 = TIMER_LEASE_SWEEP;

    /// Model a crash-restart with total state loss (§4.5 failure
    /// handling): lock table, q2 buffers, ownership, migration and
    /// grace buffers, and the CPU model are all wiped, as if the
    /// process was restarted on a fresh machine. Counters are kept —
    /// they belong to the harness, not the process. The harness must
    /// re-declare owned locks ([`ServerNode::own_lock`]), re-arm the
    /// sweep timer ([`ServerNode::SWEEP_TIMER_TOKEN`]) and usually
    /// apply a failover grace period ([`ServerNode::set_grace_until`])
    /// so stranded leases expire before new grants.
    pub fn restart(&mut self) {
        self.table = LockTable::new();
        self.q2.clear();
        self.ownership.clear();
        self.promote_buf.clear();
        self.grace_buf.clear();
        self.grace_until_ns = 0;
        self.cores = CoreModel::new(self.cfg.cores, self.cfg.service.as_nanos());
    }

    /// Repoint the server at a different ToR switch (backup switch
    /// failover, §4.5).
    pub fn set_switch(&mut self, switch: NodeId) {
        self.switch = switch;
    }

    /// Enter the failover grace period: acquires arriving before
    /// `until_ns` are buffered and only processed once it passes, giving
    /// the failed predecessor's leases time to expire.
    pub fn set_grace_until(&mut self, until_ns: u64) {
        self.grace_until_ns = until_ns;
    }

    /// Counters.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// The lock table (harness introspection).
    pub fn table(&self) -> &LockTable {
        &self.table
    }

    /// The core model (utilization reporting).
    pub fn cores(&self) -> &CoreModel {
        &self.cores
    }

    /// Harvest per-lock `(r_i, c_i)` stats for owned locks.
    pub fn take_lock_stats(&mut self) -> Vec<(LockId, u64, u32)> {
        self.table.take_stats()
    }

    /// Current q2 depth for a lock.
    pub fn q2_depth(&self, lock: LockId) -> usize {
        self.q2.get(&lock).map_or(0, |q| q.len())
    }

    fn ownership_of(&self, lock: LockId) -> Ownership {
        self.ownership
            .get(&lock)
            .copied()
            .unwrap_or(Ownership::Owned)
    }

    /// Charge CPU and return the output delay for a request on `lock`.
    fn charge(&mut self, lock: LockId, now_ns: u64) -> SimDuration {
        let done = self.cores.process(lock, now_ns);
        SimDuration::from_nanos(done - now_ns)
    }

    fn send_grant(
        &mut self,
        req: &LockRequest,
        delay: SimDuration,
        ctx: &mut Context<'_, NetLockMsg>,
    ) {
        self.stats.grants += 1;
        let grant = GrantMsg {
            lock: req.lock,
            txn: req.txn,
            mode: req.mode,
            client: req.client,
            priority: req.priority,
            grantor: Grantor::Server,
            issued_at_ns: req.issued_at_ns,
        };
        ctx.send_after(NodeId(req.client.0), NetLockMsg::Grant(grant), delay);
    }

    fn on_acquire(
        &mut self,
        req: LockRequest,
        buffer_only: bool,
        ctx: &mut Context<'_, NetLockMsg>,
    ) {
        if !buffer_only && ctx.now().as_nanos() < self.grace_until_ns {
            // Failover grace: hold until predecessor leases expire.
            self.grace_buf.push(req);
            return;
        }
        let delay = self.charge(req.lock, ctx.now().as_nanos());
        match self.ownership_of(req.lock) {
            Ownership::Promoting => {
                // Paused for migration; hold for the transfer.
                self.promote_buf.entry(req.lock).or_default().push(req);
            }
            Ownership::SwitchOwned => {
                if buffer_only {
                    let q = self.q2.entry(req.lock).or_default();
                    q.push_back(req);
                    self.stats.q2_buffered += 1;
                    self.stats.q2_peak_depth = self.stats.q2_peak_depth.max(q.len());
                } else {
                    // A request routed here before the directory flipped
                    // to switch-resident (migration race): bounce it to
                    // the switch, which now owns the lock.
                    ctx.send_after(
                        self.switch,
                        NetLockMsg::Push {
                            lock: req.lock,
                            reqs: Box::new([req]),
                        },
                        delay,
                    );
                }
            }
            Ownership::Owned => {
                if buffer_only {
                    // First overflow for a lock we were not tracking:
                    // the switch owns it; start a q2.
                    self.ownership.insert(req.lock, Ownership::SwitchOwned);
                    let q = self.q2.entry(req.lock).or_default();
                    q.push_back(req);
                    self.stats.q2_buffered += 1;
                    self.stats.q2_peak_depth = self.stats.q2_peak_depth.max(q.len());
                    return;
                }
                match self.table.acquire(req) {
                    TableAcquire::Granted => self.send_grant(&req, delay, ctx),
                    TableAcquire::Queued => self.stats.queued += 1,
                }
            }
        }
    }

    fn on_release(&mut self, rel: ReleaseRequest, ctx: &mut Context<'_, NetLockMsg>) {
        let delay = self.charge(rel.lock, ctx.now().as_nanos());
        match self.ownership_of(rel.lock) {
            Ownership::SwitchOwned => {
                self.stats.spurious_releases += 1;
            }
            Ownership::Owned | Ownership::Promoting => {
                let mut granted = std::mem::take(&mut self.grant_buf);
                granted.clear();
                self.table.release(rel.lock, rel.txn, &mut granted);
                for req in &granted {
                    self.send_grant(req, delay, ctx);
                }
                self.grant_buf = granted;
                self.maybe_finish_promote(rel.lock, delay, ctx);
            }
        }
    }

    fn on_queue_space(&mut self, lock: LockId, space: u32, ctx: &mut Context<'_, NetLockMsg>) {
        let delay = self.charge(lock, ctx.now().as_nanos());
        let q = self.q2.entry(lock).or_default();
        let n = (space as usize).min(q.len());
        let reqs: Box<[LockRequest]> = q.drain(..n).collect();
        self.stats.q2_pushed += reqs.len() as u64;
        ctx.send_after(self.switch, NetLockMsg::Push { lock, reqs }, delay);
    }

    fn on_demote(&mut self, lock: LockId, ctx: &mut Context<'_, NetLockMsg>) {
        // This server now owns the lock; its q2 becomes the live queue.
        self.ownership.insert(lock, Ownership::Owned);
        let buffered: Vec<LockRequest> = self.q2.remove(&lock).unwrap_or_default().into();
        for req in buffered {
            let delay = self.charge(lock, ctx.now().as_nanos());
            match self.table.acquire(req) {
                TableAcquire::Granted => self.send_grant(&req, delay, ctx),
                TableAcquire::Queued => self.stats.queued += 1,
            }
        }
    }

    fn on_promote(&mut self, lock: LockId, ctx: &mut Context<'_, NetLockMsg>) {
        self.ownership.insert(lock, Ownership::Promoting);
        self.promote_buf.entry(lock).or_default();
        let delay = self.charge(lock, ctx.now().as_nanos());
        self.maybe_finish_promote(lock, delay, ctx);
    }

    fn maybe_finish_promote(
        &mut self,
        lock: LockId,
        delay: SimDuration,
        ctx: &mut Context<'_, NetLockMsg>,
    ) {
        if self.ownership_of(lock) != Ownership::Promoting {
            return;
        }
        let idle = self.table.get(lock).is_none_or(|st| st.is_idle());
        if !idle {
            return;
        }
        self.table.evict(lock);
        self.ownership.insert(lock, Ownership::SwitchOwned);
        let reqs: Box<[LockRequest]> = self.promote_buf.remove(&lock).unwrap_or_default().into();
        ctx.send_after(
            self.switch,
            NetLockMsg::CtrlPromoteReady { lock, reqs },
            delay,
        );
    }

    /// Replay acquires buffered during a failover grace period.
    fn drain_grace(&mut self, ctx: &mut Context<'_, NetLockMsg>) {
        if self.grace_buf.is_empty() || ctx.now().as_nanos() < self.grace_until_ns {
            return;
        }
        let buffered = std::mem::take(&mut self.grace_buf);
        for req in buffered {
            self.on_acquire(req, false, ctx);
        }
    }

    fn lease_sweep(&mut self, ctx: &mut Context<'_, NetLockMsg>) {
        self.drain_grace(ctx);
        if self.cfg.lease.is_zero() {
            ctx.set_timer(self.cfg.sweep_tick, TIMER_LEASE_SWEEP);
            return;
        }
        let now = ctx.now().as_nanos();
        let mut sweep = std::mem::take(&mut self.sweep_buf);
        sweep.clear();
        self.table.touched_locks(&mut sweep);
        for &lock in &sweep {
            let mut granted = std::mem::take(&mut self.grant_buf);
            granted.clear();
            self.table
                .expire_leases(lock, now, self.cfg.lease.as_nanos(), &mut granted);
            for req in &granted {
                self.stats.lease_grants += 1;
                let delay = self.charge(lock, now);
                self.send_grant(req, delay, ctx);
            }
            let any = !granted.is_empty();
            self.grant_buf = granted;
            if any {
                let delay = self.charge(lock, now);
                self.maybe_finish_promote(lock, delay, ctx);
            }
        }
        self.sweep_buf = sweep;
        ctx.set_timer(self.cfg.sweep_tick, TIMER_LEASE_SWEEP);
    }
}

impl Node<NetLockMsg> for ServerNode {
    fn on_start(&mut self, ctx: &mut Context<'_, NetLockMsg>) {
        if !self.cfg.sweep_tick.is_zero() {
            ctx.set_timer(self.cfg.sweep_tick, TIMER_LEASE_SWEEP);
        }
    }

    fn on_packet(&mut self, pkt: Packet<NetLockMsg>, ctx: &mut Context<'_, NetLockMsg>) {
        match pkt.payload {
            NetLockMsg::Acquire(req) => self.on_acquire(req, false, ctx),
            NetLockMsg::Forwarded { req, buffer_only } => self.on_acquire(req, buffer_only, ctx),
            NetLockMsg::Release(rel) => self.on_release(rel, ctx),
            NetLockMsg::QueueSpace { lock, space } => self.on_queue_space(lock, space, ctx),
            NetLockMsg::CtrlDemote { lock } => self.on_demote(lock, ctx),
            NetLockMsg::CtrlPromote { lock } => self.on_promote(lock, ctx),
            _ => {}
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_, NetLockMsg>) {
        if token == TIMER_LEASE_SWEEP {
            self.lease_sweep(ctx);
        }
    }

    fn name(&self) -> &str {
        "lock-server"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlock_proto::{ClientAddr, LockMode, Priority, TenantId, TxnId};
    use netlock_sim::{Packet, SimTime, Simulator};

    struct Sink(Vec<NetLockMsg>);
    impl netlock_sim::Node<NetLockMsg> for Sink {
        fn on_packet(&mut self, pkt: Packet<NetLockMsg>, _ctx: &mut Context<'_, NetLockMsg>) {
            self.0.push(pkt.payload);
        }
        fn on_timer(&mut self, _t: u64, _c: &mut Context<'_, NetLockMsg>) {}
    }

    fn req(lock: u32, txn: u64, client: u32) -> LockRequest {
        LockRequest {
            lock: LockId(lock),
            mode: LockMode::Exclusive,
            txn: TxnId(txn),
            client: ClientAddr(client),
            tenant: TenantId(0),
            priority: Priority(0),
            issued_at_ns: 0,
        }
    }

    #[test]
    fn owned_lock_grant_and_handoff() {
        let mut sim: Simulator<NetLockMsg> = Simulator::with_seed(1);
        let client = sim.add_node(Box::new(Sink(Vec::new())));
        let switch = sim.add_node(Box::new(Sink(Vec::new())));
        let server = sim.add_node(Box::new(ServerNode::new(ServerConfig::default(), switch)));
        sim.inject(client, server, NetLockMsg::Acquire(req(1, 10, client.0)));
        sim.inject(client, server, NetLockMsg::Acquire(req(1, 11, client.0)));
        sim.run_until(SimTime(1_000_000));
        sim.read_node::<Sink, _>(client, |s| {
            assert_eq!(s.0.len(), 1, "second request queued");
        });
        sim.inject(
            client,
            server,
            NetLockMsg::Release(ReleaseRequest {
                lock: LockId(1),
                txn: TxnId(10),
                mode: LockMode::Exclusive,
                client: ClientAddr(client.0),
                priority: Priority(0),
            }),
        );
        sim.run_until(SimTime(2_000_000));
        sim.read_node::<Sink, _>(client, |s| {
            assert_eq!(s.0.len(), 2, "release hands off to waiter");
            assert!(matches!(s.0[1], NetLockMsg::Grant(g) if g.txn == TxnId(11)));
        });
    }

    #[test]
    fn grace_period_defers_grants() {
        let mut sim: Simulator<NetLockMsg> = Simulator::with_seed(2);
        let client = sim.add_node(Box::new(Sink(Vec::new())));
        let switch = sim.add_node(Box::new(Sink(Vec::new())));
        let server = sim.add_node(Box::new(ServerNode::new(ServerConfig::default(), switch)));
        sim.with_node::<ServerNode, _>(server, |n| n.set_grace_until(5_000_000));
        sim.inject(client, server, NetLockMsg::Acquire(req(1, 10, client.0)));
        sim.run_until(SimTime(4_000_000));
        sim.read_node::<Sink, _>(client, |s| {
            assert!(s.0.is_empty(), "no grants during the grace period");
        });
        // After the grace deadline, the sweep tick replays the buffer.
        sim.run_until(SimTime(8_000_000));
        sim.read_node::<Sink, _>(client, |s| {
            assert_eq!(s.0.len(), 1, "buffered acquire granted after grace");
        });
    }

    #[test]
    fn q2_buffer_and_push_roundtrip() {
        let mut sim: Simulator<NetLockMsg> = Simulator::with_seed(3);
        let client = sim.add_node(Box::new(Sink(Vec::new())));
        let switch = sim.add_node(Box::new(Sink(Vec::new())));
        let server = sim.add_node(Box::new(ServerNode::new(ServerConfig::default(), switch)));
        // Overflow-marked requests buffer silently.
        for t in 0..3 {
            sim.inject(
                client,
                server,
                NetLockMsg::Forwarded {
                    req: req(7, t, client.0),
                    buffer_only: true,
                },
            );
        }
        sim.run_until(SimTime(1_000_000));
        sim.read_node::<Sink, _>(client, |s| assert!(s.0.is_empty()));
        sim.read_node::<ServerNode, _>(server, |n| {
            assert_eq!(n.q2_depth(LockId(7)), 3);
        });
        // QueueSpace pops in FIFO order, bounded by space.
        sim.inject(
            client,
            server,
            NetLockMsg::QueueSpace {
                lock: LockId(7),
                space: 2,
            },
        );
        sim.run_until(SimTime(2_000_000));
        sim.read_node::<Sink, _>(switch, |s| {
            assert_eq!(s.0.len(), 1);
            let NetLockMsg::Push { lock, reqs } = &s.0[0] else {
                panic!("expected push");
            };
            assert_eq!(*lock, LockId(7));
            let txns: Vec<u64> = reqs.iter().map(|r| r.txn.0).collect();
            assert_eq!(txns, vec![0, 1]);
        });
        sim.read_node::<ServerNode, _>(server, |n| {
            assert_eq!(n.q2_depth(LockId(7)), 1);
        });
    }

    #[test]
    fn promote_handshake_transfers_buffered_requests() {
        let mut sim: Simulator<NetLockMsg> = Simulator::with_seed(4);
        let client = sim.add_node(Box::new(Sink(Vec::new())));
        let switch = sim.add_node(Box::new(Sink(Vec::new())));
        let server = sim.add_node(Box::new(ServerNode::new(ServerConfig::default(), switch)));
        // Take the lock so the promote cannot finish immediately.
        sim.inject(client, server, NetLockMsg::Acquire(req(3, 1, client.0)));
        sim.run_until(SimTime(100_000));
        sim.inject(switch, server, NetLockMsg::CtrlPromote { lock: LockId(3) });
        sim.run_until(SimTime(200_000));
        // New arrival during the pause is buffered for transfer.
        sim.inject(client, server, NetLockMsg::Acquire(req(3, 2, client.0)));
        sim.run_until(SimTime(300_000));
        sim.read_node::<Sink, _>(switch, |s| {
            assert!(s.0.is_empty(), "not ready while the holder remains");
        });
        // Holder releases → server drains → CtrlPromoteReady with the
        // buffered request.
        sim.inject(
            client,
            server,
            NetLockMsg::Release(ReleaseRequest {
                lock: LockId(3),
                txn: TxnId(1),
                mode: LockMode::Exclusive,
                client: ClientAddr(client.0),
                priority: Priority(0),
            }),
        );
        sim.run_until(SimTime(400_000));
        sim.read_node::<Sink, _>(switch, |s| {
            assert_eq!(s.0.len(), 1);
            let NetLockMsg::CtrlPromoteReady { lock, reqs } = &s.0[0] else {
                panic!("expected promote-ready");
            };
            assert_eq!(*lock, LockId(3));
            assert_eq!(reqs.len(), 1);
            assert_eq!(reqs[0].txn, TxnId(2));
        });
    }
}
