//! Print the static resource report for the paper-default switch
//! program, with observed pass statistics from an exhaustive
//! exploration of the data plane (see `switch::analysis`).
//!
//! ```bash
//! cargo run --release -p netlock-switch --example resource_report
//! ```

use netlock_switch::analysis::explorer::{explore, EngineKind};
use netlock_switch::analysis::layout::TofinoBudget;
use netlock_switch::dataplane::DataPlane;
use netlock_switch::priority::PriorityLayout;
use netlock_switch::shared_queue::SharedQueueLayout;

fn main() {
    let budget = TofinoBudget::tofino();

    println!("== FCFS engine, paper-default layout ==");
    let summary = match explore(EngineKind::Fcfs) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("discipline violation: {e}");
            std::process::exit(1);
        }
    };
    let dp = DataPlane::new_fcfs(&SharedQueueLayout::paper_default());
    print!("{}", dp.layout().report(Some(&summary.stats)));
    match dp.layout().check(&budget) {
        Ok(()) => println!("feasible on a Tofino-class budget"),
        Err(e) => println!("INFEASIBLE: {e}"),
    }
    println!(
        "explored {} states x {} probes",
        summary.states, summary.probes
    );

    println!();
    println!("== priority engine (3 levels) ==");
    let summary = match explore(EngineKind::Priority) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("discipline violation: {e}");
            std::process::exit(1);
        }
    };
    let dp = DataPlane::new_priority(&PriorityLayout::new(3, 3, 2));
    print!("{}", dp.layout().report(Some(&summary.stats)));
    match dp.layout().check(&budget) {
        Ok(()) => println!("feasible on a Tofino-class budget"),
        Err(e) => println!("INFEASIBLE: {e}"),
    }
    println!(
        "explored {} states x {} probes",
        summary.states, summary.probes
    );
}
