//! The FCFS lock engine: Algorithm 2 of the paper.
//!
//! Executes acquire/release operations against a [`SharedQueue`] as a
//! sequence of pipeline passes, exactly as the P4 program does with
//! `resubmit`:
//!
//! - **acquire** — one pass: enqueue + grant check (lines 1–5).
//! - **release** — one pass to dequeue the head (lines 7–12), then one
//!   resubmitted pass to inspect the new head (lines 13–21), then — for
//!   the exclusive→shared case — one further pass per additional shared
//!   grant (lines 22–27, Figure 6).
//!
//! The engine never stores a "granted" bit; Algorithm 2's queue invariant
//! (the queue is a granted prefix followed by ungranted requests, where a
//! granted prefix of shared entries is only followed by an exclusive
//! request) makes grant state derivable, and the property tests in this
//! crate check the invariant against a reference model.

use netlock_proto::LockMode;

use crate::register::{Pass, PassId};
use crate::shared_queue::{DequeueOutcome, EnqueueOutcome, SharedQueue};
use crate::slot::Slot;

/// Hands out unique pipeline pass ids.
#[derive(Debug, Default)]
pub struct PassAllocator {
    next: u64,
    sink: Option<crate::analysis::trace::TraceSink>,
}

impl PassAllocator {
    /// A fresh allocator.
    pub fn new() -> PassAllocator {
        PassAllocator {
            next: 0,
            sink: None,
        }
    }

    /// Install (or remove) a trace sink; every pass handed out
    /// afterwards records its register accesses into it.
    pub fn set_trace_sink(&mut self, sink: Option<crate::analysis::trace::TraceSink>) {
        self.sink = sink;
    }

    /// Begin a new pass at the given resubmit depth.
    #[inline]
    pub fn begin(&mut self, resubmit_depth: u32) -> Pass {
        self.next += 1;
        let mut pass = Pass::new(PassId(self.next), resubmit_depth);
        if let Some(sink) = &self.sink {
            pass.set_sink(sink.clone());
        }
        pass
    }
}

/// Result of processing an acquire.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AcquireOutcome {
    /// Lock granted immediately; notify the client.
    Granted,
    /// Request queued; the grant will come on a later release.
    Queued,
    /// Queue region full; the request must overflow to the lock server.
    Overflow,
}

/// Result of processing a release.
///
/// Granted slots are appended to the caller-owned buffer passed to
/// [`FcfsEngine::release`] (in grant order) rather than returned here:
/// the data plane reuses one buffer across packets so the hot path
/// never allocates.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReleaseOutcome {
    /// True if the queue is now empty (triggers the q2 push protocol when
    /// the lock is in overflow mode).
    pub now_empty: bool,
    /// True if the release found an empty queue (duplicate/stale).
    pub spurious: bool,
    /// Pipeline passes consumed (1 + resubmits).
    pub passes: u32,
}

/// The FCFS engine. Stateless: all state lives in the [`SharedQueue`]'s
/// register arrays, as it must for a data-plane implementation.
pub struct FcfsEngine;

impl FcfsEngine {
    /// The acquire/enqueue pass this engine performs, expressed as a
    /// declarative [`crate::txn::TxnProgram`] over one region of
    /// capacity `cap` — the statically verifiable specification of
    /// [`FcfsEngine::acquire`]'s grant decision (see
    /// [`crate::txn::netlock`]).
    pub fn grant_txn_program(cap: u32) -> crate::txn::TxnProgram {
        crate::txn::netlock::fcfs_enqueue_program(cap)
    }

    /// Process an acquire (Algorithm 2 lines 1–5). One pipeline pass.
    #[inline]
    pub fn acquire(
        queue: &mut SharedQueue,
        passes: &mut PassAllocator,
        qid: usize,
        slot: Slot,
    ) -> AcquireOutcome {
        let mut pass = passes.begin(0);
        match queue.enqueue(&mut pass, qid, slot) {
            EnqueueOutcome::Granted => AcquireOutcome::Granted,
            EnqueueOutcome::Queued => AcquireOutcome::Queued,
            EnqueueOutcome::Full => AcquireOutcome::Overflow,
        }
    }

    /// Process a release (Algorithm 2 lines 7–27).
    ///
    /// `released_mode` comes from the release packet header. Granted
    /// slots are appended to `grants` in grant order; the caller owns
    /// (and reuses) the buffer.
    #[inline]
    pub fn release(
        queue: &mut SharedQueue,
        passes: &mut PassAllocator,
        qid: usize,
        released_mode: LockMode,
        grants: &mut Vec<Slot>,
    ) -> ReleaseOutcome {
        let mut out = ReleaseOutcome::default();

        // Pass 0 (meta.flag == 0): dequeue the head.
        let mut pass = passes.begin(0);
        let (remaining, mut ptr) = match queue.release_dequeue(&mut pass, qid, released_mode) {
            DequeueOutcome::Spurious => {
                out.spurious = true;
                out.passes = 1;
                return out;
            }
            DequeueOutcome::Dequeued {
                remaining,
                new_head,
            } => (remaining, new_head),
        };
        out.passes = 1;
        if remaining == 0 {
            out.now_empty = true;
            return out;
        }

        // Pass 1 (meta.flag == 1): read the new head via resubmit.
        let mut pass = passes.begin(1);
        let head = queue.read_at(&mut pass, qid, ptr);
        out.passes += 1;
        debug_assert!(head.valid, "queue count and slot contents disagree");
        match (head.mode, released_mode) {
            // Shared → Shared: the new head was granted when it entered
            // the queue; nothing to do.
            (LockMode::Shared, LockMode::Shared) => {}
            // Shared → Exclusive / Exclusive → Exclusive: grant the head.
            (LockMode::Exclusive, _) => {
                grants.push(head);
            }
            // Exclusive → Shared: grant the head and cascade over the
            // following run of shared requests (meta.flag == 2 passes).
            (LockMode::Shared, LockMode::Exclusive) => {
                grants.push(head);
                let mut granted = 1;
                while granted < remaining {
                    ptr = queue.next_offset(qid, ptr);
                    let mut pass = passes.begin(1 + granted);
                    let s = queue.read_at(&mut pass, qid, ptr);
                    out.passes += 1;
                    debug_assert!(s.valid, "queue count and slot contents disagree");
                    if s.mode != LockMode::Shared {
                        break;
                    }
                    grants.push(s);
                    granted += 1;
                }
            }
        }
        out
    }
}

impl FcfsEngine {
    /// Grant the head run of a queue whose grants were suppressed
    /// (handback from a backup switch, §4.5): reads the head entry and,
    /// for a shared head, the following shared run — one pass each, like
    /// the release cascade, but without dequeuing anything. Granted
    /// slots are appended to `grants`.
    pub fn kickstart(
        queue: &mut SharedQueue,
        passes: &mut PassAllocator,
        qid: usize,
        grants: &mut Vec<Slot>,
    ) -> ReleaseOutcome {
        let mut out = ReleaseOutcome::default();
        let view = queue.cp_region(qid);
        if view.count == 0 {
            out.now_empty = true;
            out.passes = 1;
            return out;
        }
        let mut ptr = view.head;
        let mut pass = passes.begin(0);
        let head = queue.read_at(&mut pass, qid, ptr);
        out.passes = 1;
        grants.push(head);
        if head.mode == LockMode::Shared {
            let mut granted = 1;
            while granted < view.count {
                ptr = queue.next_offset(qid, ptr);
                let mut pass = passes.begin(granted);
                let s = queue.read_at(&mut pass, qid, ptr);
                out.passes += 1;
                if s.mode != LockMode::Shared {
                    break;
                }
                grants.push(s);
                granted += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared_queue::SharedQueueLayout;
    use netlock_proto::{ClientAddr, Priority, TenantId, TxnId};

    fn slot(mode: LockMode, txn: u64) -> Slot {
        Slot {
            valid: true,
            mode,
            txn: TxnId(txn),
            client: ClientAddr(txn as u32),
            tenant: TenantId(0),
            priority: Priority(0),
            issued_at_ns: 0,
            granted: false,
            granted_at_ns: 0,
        }
    }

    fn setup(cap: u32) -> (SharedQueue, PassAllocator) {
        let mut q = SharedQueue::new(&SharedQueueLayout::small(2, 16, 4));
        q.cp_set_region(0, 0, cap);
        (q, PassAllocator::new())
    }

    fn txns(grants: &[Slot]) -> Vec<u64> {
        grants.iter().map(|s| s.txn.0).collect()
    }

    /// Test shim: collect grants into a fresh buffer per call.
    fn release(
        q: &mut SharedQueue,
        pa: &mut PassAllocator,
        qid: usize,
        mode: LockMode,
    ) -> (ReleaseOutcome, Vec<Slot>) {
        let mut grants = Vec::new();
        let out = FcfsEngine::release(q, pa, qid, mode, &mut grants);
        (out, grants)
    }

    fn kickstart(
        q: &mut SharedQueue,
        pa: &mut PassAllocator,
        qid: usize,
    ) -> (ReleaseOutcome, Vec<Slot>) {
        let mut grants = Vec::new();
        let out = FcfsEngine::kickstart(q, pa, qid, &mut grants);
        (out, grants)
    }

    #[test]
    fn shared_to_shared_no_grant() {
        let (mut q, mut pa) = setup(8);
        assert_eq!(
            FcfsEngine::acquire(&mut q, &mut pa, 0, slot(LockMode::Shared, 1)),
            AcquireOutcome::Granted
        );
        assert_eq!(
            FcfsEngine::acquire(&mut q, &mut pa, 0, slot(LockMode::Shared, 2)),
            AcquireOutcome::Granted
        );
        let (out, grants) = release(&mut q, &mut pa, 0, LockMode::Shared);
        assert!(grants.is_empty(), "S→S must not re-grant");
        assert!(!out.now_empty);
        assert_eq!(out.passes, 2);
    }

    #[test]
    fn shared_to_exclusive_grants_head() {
        let (mut q, mut pa) = setup(8);
        FcfsEngine::acquire(&mut q, &mut pa, 0, slot(LockMode::Shared, 1));
        assert_eq!(
            FcfsEngine::acquire(&mut q, &mut pa, 0, slot(LockMode::Exclusive, 2)),
            AcquireOutcome::Queued
        );
        let (_out, grants) = release(&mut q, &mut pa, 0, LockMode::Shared);
        assert_eq!(txns(&grants), vec![2]);
    }

    #[test]
    fn exclusive_to_exclusive_grants_one() {
        let (mut q, mut pa) = setup(8);
        FcfsEngine::acquire(&mut q, &mut pa, 0, slot(LockMode::Exclusive, 1));
        FcfsEngine::acquire(&mut q, &mut pa, 0, slot(LockMode::Exclusive, 2));
        FcfsEngine::acquire(&mut q, &mut pa, 0, slot(LockMode::Exclusive, 3));
        let (out, grants) = release(&mut q, &mut pa, 0, LockMode::Exclusive);
        assert_eq!(txns(&grants), vec![2]);
        assert_eq!(out.passes, 2, "E→E needs exactly one resubmit");
    }

    #[test]
    fn exclusive_to_shared_cascades() {
        let (mut q, mut pa) = setup(8);
        FcfsEngine::acquire(&mut q, &mut pa, 0, slot(LockMode::Exclusive, 1));
        for i in 2..=4 {
            assert_eq!(
                FcfsEngine::acquire(&mut q, &mut pa, 0, slot(LockMode::Shared, i)),
                AcquireOutcome::Queued
            );
        }
        FcfsEngine::acquire(&mut q, &mut pa, 0, slot(LockMode::Exclusive, 5));
        let (out, grants) = release(&mut q, &mut pa, 0, LockMode::Exclusive);
        assert_eq!(txns(&grants), vec![2, 3, 4], "cascade stops at X");
        // passes: dequeue + head read + 2 extra shared reads + stop-read at X
        assert_eq!(out.passes, 5);
    }

    #[test]
    fn cascade_stops_at_queue_end() {
        let (mut q, mut pa) = setup(8);
        FcfsEngine::acquire(&mut q, &mut pa, 0, slot(LockMode::Exclusive, 1));
        FcfsEngine::acquire(&mut q, &mut pa, 0, slot(LockMode::Shared, 2));
        FcfsEngine::acquire(&mut q, &mut pa, 0, slot(LockMode::Shared, 3));
        let (_out, grants) = release(&mut q, &mut pa, 0, LockMode::Exclusive);
        assert_eq!(txns(&grants), vec![2, 3]);
    }

    #[test]
    fn release_to_empty_sets_flag() {
        let (mut q, mut pa) = setup(8);
        FcfsEngine::acquire(&mut q, &mut pa, 0, slot(LockMode::Exclusive, 1));
        let (out, grants) = release(&mut q, &mut pa, 0, LockMode::Exclusive);
        assert!(out.now_empty);
        assert!(grants.is_empty());
        assert_eq!(out.passes, 1, "empty queue needs no resubmit");
    }

    #[test]
    fn spurious_release_flagged() {
        let (mut q, mut pa) = setup(8);
        let (out, _grants) = release(&mut q, &mut pa, 0, LockMode::Shared);
        assert!(out.spurious);
    }

    #[test]
    fn kickstart_grants_suppressed_head_run() {
        let (mut q, mut pa) = setup(8);
        // Enqueue ungranted entries (suppressed mode: decide = false).
        for (i, mode) in [LockMode::Shared, LockMode::Shared, LockMode::Exclusive]
            .iter()
            .enumerate()
        {
            let mut pass = pa.begin(0);
            q.enqueue_deciding(&mut pass, 0, slot(*mode, i as u64 + 1), false, |_, _| false);
        }
        let (_out, grants) = kickstart(&mut q, &mut pa, 0);
        assert_eq!(txns(&grants), vec![1, 2], "shared head run granted");
        // An exclusive head grants exactly one.
        let (mut q2, mut pa2) = setup(8);
        let mut pass = pa2.begin(0);
        q2.enqueue_deciding(&mut pass, 0, slot(LockMode::Exclusive, 9), false, |_, _| {
            false
        });
        let (_out, grants) = kickstart(&mut q2, &mut pa2, 0);
        assert_eq!(txns(&grants), vec![9]);
        // An empty queue reports empty.
        let (mut q3, mut pa3) = setup(8);
        let (out, grants) = kickstart(&mut q3, &mut pa3, 0);
        assert!(out.now_empty && grants.is_empty());
    }

    #[test]
    fn interleaved_modes_serialize_correctly() {
        // [S1 S2] granted; X3 queued; S4 queued (behind X3).
        let (mut q, mut pa) = setup(8);
        FcfsEngine::acquire(&mut q, &mut pa, 0, slot(LockMode::Shared, 1));
        FcfsEngine::acquire(&mut q, &mut pa, 0, slot(LockMode::Shared, 2));
        FcfsEngine::acquire(&mut q, &mut pa, 0, slot(LockMode::Exclusive, 3));
        FcfsEngine::acquire(&mut q, &mut pa, 0, slot(LockMode::Shared, 4));

        // S1 releases: head S2 already granted → no grants.
        let (_out, grants) = release(&mut q, &mut pa, 0, LockMode::Shared);
        assert!(grants.is_empty());
        // S2 releases: head X3 → grant X3.
        let (_out, grants) = release(&mut q, &mut pa, 0, LockMode::Shared);
        assert_eq!(txns(&grants), vec![3]);
        // X3 releases: cascade grants S4.
        let (_out, grants) = release(&mut q, &mut pa, 0, LockMode::Exclusive);
        assert_eq!(txns(&grants), vec![4]);
        // S4 releases: empty.
        let (out, _grants) = release(&mut q, &mut pa, 0, LockMode::Shared);
        assert!(out.now_empty);
    }
}
