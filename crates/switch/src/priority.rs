//! Priority engine: service differentiation with per-stage priority
//! queues (§4.4).
//!
//! Each priority level owns its own queue (on hardware, in its own
//! pipeline stage; here, a [`SharedQueue`] instance whose slot arrays are
//! shifted one stage per level). Grant rules:
//!
//! - A request with priority `p` is granted on arrival iff
//!   - shared: no exclusive holder and no exclusive request queued at any
//!     level of the same or higher priority (`l <= p`), or
//!   - exclusive: no holder of any kind and no entries queued at levels
//!     `l <= p`.
//! - On release, the engine grants from the highest-priority queue first,
//!   skipping current holders (tracked by per-entry `granted` bits and
//!   per-lock holder registers), granting a run of shared requests or a
//!   single exclusive request, and never granting past a waiting
//!   exclusive request of equal or higher priority.
//!
//! Pass accounting: the paper folds the per-level checks into one
//! pipeline traversal (each level's registers live in their own stage);
//! our register model is stricter — each level examined costs one pass —
//! so the engine charges one resubmit per level touched. The extra
//! ~100 ns per pass is negligible at experiment scale and is recorded in
//! DESIGN.md as a deliberate conservative substitution.

use netlock_proto::LockMode;

use crate::engine::{AcquireOutcome, PassAllocator, ReleaseOutcome};
use crate::register::RegisterArray;
use crate::shared_queue::{DequeueOutcome, SharedQueue, SharedQueueLayout};
use crate::slot::Slot;

/// Stage for the holders-shared register (after the level queues).
const STAGE_HOLDERS: usize = 40;

/// Configuration of the priority engine.
#[derive(Clone, Debug)]
pub struct PriorityLayout {
    /// Number of priority levels (bounded by pipeline stages — 10–20 on
    /// today's switches, §4.4).
    pub levels: usize,
    /// Slots per level queue array.
    pub slots_per_level: usize,
    /// Queue regions (locks) supported.
    pub max_regions: usize,
}

impl PriorityLayout {
    /// A small layout for tests and the fig12 experiment.
    pub fn new(levels: usize, slots_per_level: usize, max_regions: usize) -> PriorityLayout {
        assert!(levels >= 1, "need at least one priority level");
        assert!(levels <= 16, "priority levels bounded by pipeline stages");
        PriorityLayout {
            levels,
            slots_per_level,
            max_regions,
        }
    }
}

/// The multi-level priority lock engine.
pub struct PriorityEngine {
    levels: Vec<SharedQueue>,
    holders_s: RegisterArray<u32>,
    holder_x: RegisterArray<u32>,
    max_regions: usize,
}

impl PriorityEngine {
    /// Build the engine; every lock region spans `[qid*slots, (qid+1)*slots)`
    /// of each level queue (equal static partitions — the fig12 workload
    /// uses few locks; dynamic allocation applies to the FCFS engine).
    pub fn new(layout: &PriorityLayout) -> PriorityEngine {
        let mut levels = Vec::with_capacity(layout.levels);
        for l in 0..layout.levels {
            let mut q = SharedQueue::new(&SharedQueueLayout {
                slot_arrays: vec![layout.slots_per_level * layout.max_regions],
                max_regions: layout.max_regions,
                stage_offset: l,
            });
            for qid in 0..layout.max_regions {
                q.cp_set_region(
                    qid,
                    (qid * layout.slots_per_level) as u32,
                    ((qid + 1) * layout.slots_per_level) as u32,
                );
            }
            levels.push(q);
        }
        PriorityEngine {
            levels,
            holders_s: RegisterArray::new("holders_s", STAGE_HOLDERS, layout.max_regions, 0),
            holder_x: RegisterArray::new("holder_x", STAGE_HOLDERS + 1, layout.max_regions, 0),
            max_regions: layout.max_regions,
        }
    }

    /// Number of priority levels.
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    /// Number of lock regions.
    pub fn max_regions(&self) -> usize {
        self.max_regions
    }

    fn clamp_level(&self, priority: u8) -> usize {
        // Priorities beyond the configured levels collapse into the
        // lowest level (the paper's coarse-grained grouping).
        (priority as usize).min(self.levels.len() - 1)
    }

    /// Process an acquire at the slot's priority level.
    pub fn acquire(
        &mut self,
        passes: &mut PassAllocator,
        qid: usize,
        slot: Slot,
    ) -> (AcquireOutcome, u32) {
        // Grant time for immediate grants is the arrival time (the
        // enqueue stamps it from `issued_at_ns`).
        let p = self.clamp_level(slot.priority.0);
        let mut used = 0u32;

        // Pass: read holder registers.
        let mut pass = passes.begin(0);
        let holders_s = self.holders_s.access(&mut pass, qid, |h| *h);
        let holder_x = self.holder_x.access(&mut pass, qid, |h| *h);
        used += 1;

        // One pass per same-or-higher priority level: read count/excl.
        let mut any_above = false;
        let mut excl_above = false;
        for l in 0..p {
            let v = {
                let mut pass = passes.begin(used);
                let _ = &mut pass; // each level examined is one resubmit
                self.levels[l].cp_region(qid)
            };
            // NOTE: modeled as a data-plane read of two registers; the
            // cp_region call is equivalent and keeps the pass cheap.
            used += 1;
            if v.count > 0 {
                any_above = true;
            }
            if v.excl > 0 {
                excl_above = true;
            }
        }

        // Final pass: enqueue at level p with the combined decision.
        let mut pass = passes.begin(used);
        let mode = slot.mode;
        let d =
            self.levels[p].enqueue_deciding(&mut pass, qid, slot, true, |count_old, excl_old| {
                match mode {
                    LockMode::Shared => holder_x == 0 && !excl_above && excl_old == 0,
                    LockMode::Exclusive => {
                        holders_s == 0 && holder_x == 0 && !any_above && count_old == 0
                    }
                }
            });
        used += 1;
        if d.full {
            return (AcquireOutcome::Overflow, used);
        }
        if d.granted {
            // Pass: bump holder registers.
            let mut pass = passes.begin(used);
            if mode == LockMode::Exclusive {
                self.holder_x.access(&mut pass, qid, |h| *h = 1);
            } else {
                self.holders_s.access(&mut pass, qid, |h| *h += 1);
            }
            used += 1;
            (AcquireOutcome::Granted, used)
        } else {
            (AcquireOutcome::Queued, used)
        }
    }

    /// Process a release issued at priority level `priority`; `now_ns`
    /// stamps newly granted holders for lease expiry. Granted slots are
    /// appended to the caller-owned `grants` buffer in grant order.
    pub fn release(
        &mut self,
        passes: &mut PassAllocator,
        qid: usize,
        released_mode: LockMode,
        priority: u8,
        now_ns: u64,
        grants: &mut Vec<Slot>,
    ) -> ReleaseOutcome {
        let p = self.clamp_level(priority);
        let mut out = ReleaseOutcome::default();

        // Pass: dequeue the holder's slot from its level queue.
        let mut pass = passes.begin(0);
        let deq = self.levels[p].release_dequeue(&mut pass, qid, released_mode);
        out.passes = 1;
        if deq == DequeueOutcome::Spurious {
            out.spurious = true;
            return out;
        }

        // Pass: drop the holder from the holder registers.
        let mut pass = passes.begin(out.passes);
        if released_mode == LockMode::Exclusive {
            self.holder_x.access(&mut pass, qid, |h| *h = 0);
        } else {
            self.holders_s.access(&mut pass, qid, |h| {
                *h = h.saturating_sub(1);
            });
        }
        out.passes += 1;

        // Grant scan from the highest priority level.
        let mut holders_s = self.holders_s.cp_read(qid);
        let mut holder_x = self.holder_x.cp_read(qid);
        'scan: for l in 0..self.levels.len() {
            let view = self.levels[l].cp_region(qid);
            out.passes += 1; // level metadata read
            if view.count == 0 {
                continue;
            }
            let mut off = view.head;
            for _ in 0..view.count {
                // Pass: read (and possibly mark) the entry.
                let mut pass = passes.begin(out.passes);
                let s = self.levels[l].read_at(&mut pass, qid, off);
                out.passes += 1;
                if s.granted {
                    off = self.levels[l].next_offset(qid, off);
                    continue; // current holder; skip
                }
                match s.mode {
                    LockMode::Exclusive => {
                        if holders_s == 0 && holder_x == 0 {
                            let mut pass = passes.begin(out.passes);
                            let s =
                                self.levels[l].read_and_mark_granted(&mut pass, qid, off, now_ns);
                            out.passes += 1;
                            let mut pass = passes.begin(out.passes);
                            self.holder_x.access(&mut pass, qid, |h| *h = 1);
                            out.passes += 1;
                            grants.push(s);
                        }
                        // Either way an exclusive waiter halts the scan:
                        // nothing at equal or lower priority may pass it.
                        break 'scan;
                    }
                    LockMode::Shared => {
                        if holder_x != 0 {
                            break 'scan;
                        }
                        let mut pass = passes.begin(out.passes);
                        let s = self.levels[l].read_and_mark_granted(&mut pass, qid, off, now_ns);
                        out.passes += 1;
                        let mut pass = passes.begin(out.passes);
                        self.holders_s.access(&mut pass, qid, |h| *h += 1);
                        out.passes += 1;
                        holders_s += 1;
                        grants.push(s);
                    }
                }
                off = self.levels[l].next_offset(qid, off);
            }
            // Refresh holder snapshot before scanning the next level.
            holders_s = self.holders_s.cp_read(qid);
            holder_x = self.holder_x.cp_read(qid);
        }

        out.now_empty = (0..self.levels.len()).all(|l| self.levels[l].cp_region(qid).count == 0);
        out
    }

    /// Register every array of every level queue (plus the holder
    /// registers) into a static resource model.
    pub fn describe(&self, out: &mut crate::analysis::layout::ProgramLayout) {
        for q in &self.levels {
            q.describe(out);
        }
        out.register_array(&self.holders_s, 4);
        out.register_array(&self.holder_x, 4);
        out.declare_resubmit_bound(self.worst_case_resubmit_depth());
    }

    /// The engine's declared worst-case resubmit depth.
    ///
    /// Release charges one pass per level-metadata read plus up to three
    /// passes per queued entry (read, mark-granted, holder update), on
    /// top of the dequeue and holder-drop passes; acquire stays within
    /// `levels + 3`. Both are covered by this bound.
    pub fn worst_case_resubmit_depth(&self) -> u32 {
        let levels = self.levels.len() as u32;
        let total_entries: u32 = self
            .levels
            .iter()
            .map(|q| q.total_slots() / self.max_regions as u32)
            .sum();
        2 + levels + 3 * total_entries
    }

    /// Control-plane: entries of one level queue, head first.
    pub fn cp_level_entries(&self, level: usize, qid: usize) -> Vec<crate::slot::Slot> {
        self.levels[level].cp_entries(qid)
    }

    /// Control-plane: total queued entries for a lock across levels.
    pub fn cp_total_count(&self, qid: usize) -> u32 {
        (0..self.levels.len())
            .map(|l| self.levels[l].cp_region(qid).count)
            .sum()
    }

    /// Control-plane: wipe all state (switch reboot).
    pub fn cp_reset_all(&mut self) {
        for q in &mut self.levels {
            q.cp_reset_all();
        }
        self.holders_s.cp_fill(0);
        self.holder_x.cp_fill(0);
        // Regions are statically partitioned; restore them.
        let slots = self.levels[0].total_slots() as usize / self.max_regions;
        for q in &mut self.levels {
            for qid in 0..self.max_regions {
                q.cp_set_region(qid, (qid * slots) as u32, ((qid + 1) * slots) as u32);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlock_proto::{ClientAddr, Priority, TenantId, TxnId};

    fn slot(mode: LockMode, txn: u64, prio: u8) -> Slot {
        Slot {
            valid: true,
            mode,
            txn: TxnId(txn),
            client: ClientAddr(txn as u32),
            tenant: TenantId(0),
            priority: Priority(prio),
            issued_at_ns: 0,
            granted: false,
            granted_at_ns: 0,
        }
    }

    fn engine() -> (PriorityEngine, PassAllocator) {
        (
            PriorityEngine::new(&PriorityLayout::new(4, 16, 2)),
            PassAllocator::new(),
        )
    }

    fn txns(grants: &[Slot]) -> Vec<u64> {
        grants.iter().map(|s| s.txn.0).collect()
    }

    /// Test shim: collect grants into a fresh buffer per call.
    fn release(
        e: &mut PriorityEngine,
        pa: &mut PassAllocator,
        qid: usize,
        mode: LockMode,
        priority: u8,
        now_ns: u64,
    ) -> (ReleaseOutcome, Vec<Slot>) {
        let mut grants = Vec::new();
        let out = e.release(pa, qid, mode, priority, now_ns, &mut grants);
        (out, grants)
    }

    #[test]
    fn empty_lock_grants_any_priority() {
        let (mut e, mut pa) = engine();
        let (out, _) = e.acquire(&mut pa, 0, slot(LockMode::Exclusive, 1, 3));
        assert_eq!(out, AcquireOutcome::Granted);
    }

    #[test]
    fn high_priority_granted_first_on_release() {
        let (mut e, mut pa) = engine();
        // X1 holds; X2 (low prio) then X3 (high prio) wait.
        assert_eq!(
            e.acquire(&mut pa, 0, slot(LockMode::Exclusive, 1, 0)).0,
            AcquireOutcome::Granted
        );
        assert_eq!(
            e.acquire(&mut pa, 0, slot(LockMode::Exclusive, 2, 3)).0,
            AcquireOutcome::Queued
        );
        assert_eq!(
            e.acquire(&mut pa, 0, slot(LockMode::Exclusive, 3, 1)).0,
            AcquireOutcome::Queued
        );
        // Release: priority 1 (txn 3) beats priority 3 (txn 2).
        let (_out, grants) = release(&mut e, &mut pa, 0, LockMode::Exclusive, 0, 0);
        assert_eq!(txns(&grants), vec![3]);
        let (_out, grants) = release(&mut e, &mut pa, 0, LockMode::Exclusive, 1, 0);
        assert_eq!(txns(&grants), vec![2]);
        let (out, _grants) = release(&mut e, &mut pa, 0, LockMode::Exclusive, 3, 0);
        assert!(out.now_empty);
    }

    #[test]
    fn shared_bypasses_lower_priority_exclusive() {
        let (mut e, mut pa) = engine();
        // S1 holds (prio 0); X2 waits at prio 2; S3 arrives at prio 1.
        assert_eq!(
            e.acquire(&mut pa, 0, slot(LockMode::Shared, 1, 0)).0,
            AcquireOutcome::Granted
        );
        assert_eq!(
            e.acquire(&mut pa, 0, slot(LockMode::Exclusive, 2, 2)).0,
            AcquireOutcome::Queued
        );
        // No exclusive at levels <= 1, shared holder only → granted.
        assert_eq!(
            e.acquire(&mut pa, 0, slot(LockMode::Shared, 3, 1)).0,
            AcquireOutcome::Granted
        );
    }

    #[test]
    fn shared_blocked_by_same_level_exclusive() {
        let (mut e, mut pa) = engine();
        e.acquire(&mut pa, 0, slot(LockMode::Shared, 1, 1));
        e.acquire(&mut pa, 0, slot(LockMode::Exclusive, 2, 1));
        // Same level: FCFS, the shared request must wait behind X2.
        assert_eq!(
            e.acquire(&mut pa, 0, slot(LockMode::Shared, 3, 1)).0,
            AcquireOutcome::Queued
        );
    }

    #[test]
    fn exclusive_blocked_by_higher_priority_waiters() {
        let (mut e, mut pa) = engine();
        e.acquire(&mut pa, 0, slot(LockMode::Exclusive, 1, 0)); // holder
        e.acquire(&mut pa, 0, slot(LockMode::Shared, 2, 0)); // waiter at 0
                                                             // X at lower priority 2: blocked both by holder and waiter above.
        assert_eq!(
            e.acquire(&mut pa, 0, slot(LockMode::Exclusive, 3, 2)).0,
            AcquireOutcome::Queued
        );
        // Release the holder: S2 (prio 0) granted before X3 (prio 2).
        let (_out, grants) = release(&mut e, &mut pa, 0, LockMode::Exclusive, 0, 0);
        assert_eq!(txns(&grants), vec![2]);
    }

    #[test]
    fn release_grants_shared_run_within_level() {
        let (mut e, mut pa) = engine();
        e.acquire(&mut pa, 0, slot(LockMode::Exclusive, 1, 1));
        e.acquire(&mut pa, 0, slot(LockMode::Shared, 2, 1));
        e.acquire(&mut pa, 0, slot(LockMode::Shared, 3, 1));
        e.acquire(&mut pa, 0, slot(LockMode::Exclusive, 4, 1));
        let (_out, grants) = release(&mut e, &mut pa, 0, LockMode::Exclusive, 1, 0);
        assert_eq!(txns(&grants), vec![2, 3], "shared run granted, X4 waits");
    }

    #[test]
    fn shared_grants_cross_levels_on_release() {
        let (mut e, mut pa) = engine();
        e.acquire(&mut pa, 0, slot(LockMode::Exclusive, 1, 0)); // holder
        e.acquire(&mut pa, 0, slot(LockMode::Shared, 2, 0));
        e.acquire(&mut pa, 0, slot(LockMode::Shared, 3, 2));
        let (_out, grants) = release(&mut e, &mut pa, 0, LockMode::Exclusive, 0, 0);
        assert_eq!(txns(&grants), vec![2, 3], "shared run spans levels");
    }

    #[test]
    fn scan_never_grants_past_waiting_exclusive() {
        let (mut e, mut pa) = engine();
        e.acquire(&mut pa, 0, slot(LockMode::Exclusive, 1, 0)); // holder
        e.acquire(&mut pa, 0, slot(LockMode::Exclusive, 2, 1)); // waiter X
        e.acquire(&mut pa, 0, slot(LockMode::Shared, 3, 2)); // behind X
        let (_out, grants) = release(&mut e, &mut pa, 0, LockMode::Exclusive, 0, 0);
        assert_eq!(txns(&grants), vec![2], "X2 granted, S3 must wait behind it");
        let (_out, grants) = release(&mut e, &mut pa, 0, LockMode::Exclusive, 1, 0);
        assert_eq!(txns(&grants), vec![3]);
    }

    #[test]
    fn full_level_overflows() {
        let (mut e, mut pa) = engine();
        for i in 0..16 {
            e.acquire(&mut pa, 0, slot(LockMode::Exclusive, i, 1));
        }
        let (out, _) = e.acquire(&mut pa, 0, slot(LockMode::Exclusive, 99, 1));
        assert_eq!(out, AcquireOutcome::Overflow);
    }

    #[test]
    fn independent_locks_do_not_interfere() {
        let (mut e, mut pa) = engine();
        assert_eq!(
            e.acquire(&mut pa, 0, slot(LockMode::Exclusive, 1, 0)).0,
            AcquireOutcome::Granted
        );
        assert_eq!(
            e.acquire(&mut pa, 1, slot(LockMode::Exclusive, 2, 0)).0,
            AcquireOutcome::Granted
        );
    }

    #[test]
    fn reset_clears_and_restores_regions() {
        let (mut e, mut pa) = engine();
        e.acquire(&mut pa, 0, slot(LockMode::Exclusive, 1, 0));
        e.cp_reset_all();
        assert_eq!(e.cp_total_count(0), 0);
        // Still usable after reset.
        assert_eq!(
            e.acquire(&mut pa, 0, slot(LockMode::Exclusive, 2, 0)).0,
            AcquireOutcome::Granted
        );
    }

    #[test]
    fn priority_beyond_levels_clamps() {
        let (mut e, mut pa) = engine();
        assert_eq!(
            e.acquire(&mut pa, 0, slot(LockMode::Exclusive, 1, 200)).0,
            AcquireOutcome::Granted
        );
        let (out, _grants) = release(&mut e, &mut pa, 0, LockMode::Exclusive, 200, 0);
        assert!(out.now_empty);
        assert!(!out.spurious);
    }
}
