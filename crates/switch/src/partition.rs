//! Lock-space partitioning across multiple switches.
//!
//! One switch owning the whole directory is NetLock's evaluated
//! deployment; this module is the step past it (ROADMAP item 1): the
//! lock space is split across `n` partitions by a static modulo map,
//! each partition served by its own replication chain of switches
//! (see [`crate::replication`]). Clients and ToRs route per-lock using
//! a [`PartitionMap`] — a versioned `partition → chain-head` table the
//! controller re-broadcasts (`NetLockMsg::CtrlPartitionMap`) whenever
//! a chain repair moves a head.
//!
//! The map is deliberately dumb: `partition_of(lock) = lock % n`. A
//! real deployment would hash, but a transparent map keeps every test
//! scenario auditable — lock 7 of 2 partitions is *always* partition 1.

use netlock_proto::{LockId, NetLockMsg, HEADER_LEN};
use netlock_sim::NodeId;

use crate::analysis::layout::{ArrayDescriptor, ProgramLayout};
use crate::dataplane::DataPlane;

/// Versioned lock-space routing table: which chain head serves each
/// partition. Clients keep one and re-resolve on every send, so a
/// retry after a failover lands on the repaired chain, not the corpse.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PartitionMap {
    version: u32,
    heads: Vec<NodeId>,
}

impl PartitionMap {
    /// A map with one head per partition, version 0.
    pub fn new(heads: Vec<NodeId>) -> PartitionMap {
        assert!(!heads.is_empty(), "partition map needs at least one head");
        PartitionMap { version: 0, heads }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.heads.len()
    }

    /// Current map version (bumped by the controller on every change).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The partition serving `lock`.
    pub fn partition_of(&self, lock: LockId) -> u16 {
        (lock.0 as usize % self.heads.len()) as u16
    }

    /// The chain head currently serving `lock`.
    pub fn head_of(&self, lock: LockId) -> NodeId {
        self.heads[lock.0 as usize % self.heads.len()]
    }

    /// The chain head of partition `p`.
    pub fn head_of_partition(&self, p: u16) -> NodeId {
        self.heads[p as usize]
    }

    /// Replace the head of one partition and bump the version.
    pub fn set_head(&mut self, p: u16, head: NodeId) {
        self.heads[p as usize] = head;
        self.version += 1;
    }

    /// Apply a broadcast update; stale or mismatched maps are ignored.
    /// Returns whether the map changed.
    pub fn apply_update(&mut self, version: u32, heads: &[u32]) -> bool {
        if version <= self.version || heads.len() != self.heads.len() {
            return false;
        }
        self.version = version;
        self.heads = heads.iter().map(|&h| NodeId(h)).collect();
        true
    }

    /// The broadcast form of this map.
    pub fn to_msg(&self) -> NetLockMsg {
        NetLockMsg::CtrlPartitionMap {
            version: self.version,
            heads: self.heads.iter().map(|h| h.0).collect(),
        }
    }
}

/// Locks out of `0..total` that partition `p` of `n` owns (the modulo
/// map's preimage) — what a cluster builder programs into `p`'s chain.
pub fn partition_locks(total: u32, p: u16, n: usize) -> Vec<LockId> {
    (0..total)
        .filter(|l| *l as usize % n == p as usize)
        .map(LockId)
        .collect()
}

/// Bytes one replication-log slot occupies on-chip: the admitted
/// operation's wire header plus its sequence number and apply stamp.
pub const REPL_LOG_ENTRY_BYTES: usize = HEADER_LEN + 16;

/// The feasibility layout of one partition's chain member: the data
/// plane's own register arrays plus the chain-replication metadata —
/// the head's sequence counter, the cumulative tail ack, the chain
/// epoch, and the bounded in-flight log (`log_window` slots). These
/// land in the first stages past the queue program, and the combined
/// layout must still clear [`TofinoBudget::check`]: replication is
/// only honest if it fits next to the queues it protects.
///
/// [`TofinoBudget::check`]: crate::analysis::layout::TofinoBudget::check
pub fn replicated_layout(dp: &DataPlane, log_window: usize) -> ProgramLayout {
    let mut layout = dp.layout().clone();
    let meta_stage = layout.stage_usage().keys().next_back().map_or(0, |s| s + 1);
    layout.register(ArrayDescriptor {
        name: "repl_seq",
        stage: meta_stage,
        cells: 1,
        bytes_per_cell: 8,
    });
    layout.register(ArrayDescriptor {
        name: "repl_ack",
        stage: meta_stage,
        cells: 1,
        bytes_per_cell: 8,
    });
    layout.register(ArrayDescriptor {
        name: "repl_epoch",
        stage: meta_stage,
        cells: 1,
        bytes_per_cell: 4,
    });
    layout.register(ArrayDescriptor {
        name: "repl_log",
        stage: meta_stage + 1,
        cells: log_window,
        bytes_per_cell: REPL_LOG_ENTRY_BYTES,
    });
    layout
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modulo_map_is_transparent() {
        let map = PartitionMap::new(vec![NodeId(10), NodeId(20), NodeId(30)]);
        assert_eq!(map.partition_of(LockId(7)), 1);
        assert_eq!(map.head_of(LockId(7)), NodeId(20));
        assert_eq!(map.head_of(LockId(9)), NodeId(10));
        assert_eq!(map.partitions(), 3);
    }

    #[test]
    fn stale_updates_ignored() {
        let mut map = PartitionMap::new(vec![NodeId(1), NodeId(2)]);
        assert!(map.apply_update(3, &[5, 6]));
        assert_eq!(map.head_of_partition(0), NodeId(5));
        // Stale version: no change.
        assert!(!map.apply_update(2, &[7, 8]));
        assert_eq!(map.head_of_partition(0), NodeId(5));
        // Wrong width: no change.
        assert!(!map.apply_update(9, &[7]));
        assert_eq!(map.version(), 3);
    }

    #[test]
    fn set_head_bumps_version_and_roundtrips() {
        let mut map = PartitionMap::new(vec![NodeId(1), NodeId(2)]);
        map.set_head(1, NodeId(9));
        assert_eq!(map.version(), 1);
        let NetLockMsg::CtrlPartitionMap { version, heads } = map.to_msg() else {
            panic!("wrong message kind");
        };
        let mut copy = PartitionMap::new(vec![NodeId(0), NodeId(0)]);
        assert!(copy.apply_update(version, &heads));
        assert_eq!(copy, map);
    }

    #[test]
    fn partition_locks_cover_disjointly() {
        let n = 3;
        let mut seen = [false; 20];
        for p in 0..n as u16 {
            for l in partition_locks(20, p, n) {
                assert!(!seen[l.0 as usize], "lock {l:?} in two partitions");
                seen[l.0 as usize] = true;
            }
        }
        assert!(seen.iter().all(|s| *s), "every lock owned somewhere");
    }
}
