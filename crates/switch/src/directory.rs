//! The lock directory: which locks the switch owns, and where each
//! lock's home server is.
//!
//! On hardware this is the match-action table that maps `pkt.lid` to a
//! queue region (Figure 4); entries are installed and removed by the
//! switch control plane. Locks without a switch entry are forwarded to
//! their home lock server (the paper: clients learn the partitioning from
//! a directory service and set the destination IP; the ToR switch is on
//! path and intercepts the locks it owns).

use netlock_proto::LockId;
use netlock_sim::FastHashMap;

/// Where lock requests for a given lock are processed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Residence {
    /// In the switch data plane, queue region `qid`.
    Switch {
        /// Queue region index in the shared queue.
        qid: usize,
    },
    /// At the lock's home server.
    Server,
}

/// Directory entry for one lock.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DirEntry {
    /// Current residence.
    pub residence: Residence,
    /// Index of the lock's home server (owns the lock when not in the
    /// switch; buffers q2 overflow when it is).
    pub home_server: usize,
}

/// The switch's view of lock placement.
#[derive(Clone, Debug, Default)]
pub struct LockDirectory {
    entries: FastHashMap<LockId, DirEntry>,
    /// qid → lock reverse map, for control-plane sweeps.
    by_qid: FastHashMap<usize, LockId>,
    /// Dense interning of every lock the data plane has ever counted
    /// (directory entries and default-routed locks alike): stable
    /// index per lock, survives residence flips. Backs the data
    /// plane's dense per-lock counter arrays the way a compiled
    /// Tofino table backs its counters — the slot is assigned once.
    index_of: FastHashMap<LockId, u32>,
    /// index → lock reverse map for `index_of`.
    interned: Vec<LockId>,
}

impl LockDirectory {
    /// An empty directory.
    pub fn new() -> LockDirectory {
        LockDirectory::default()
    }

    /// Look up a lock. Unknown locks return `None`; the caller routes
    /// them by destination IP (i.e. to the server the client addressed).
    pub fn get(&self, lock: LockId) -> Option<DirEntry> {
        self.entries.get(&lock).copied()
    }

    /// Install or update a server-resident lock.
    pub fn set_server_resident(&mut self, lock: LockId, home_server: usize) {
        if let Some(prev) = self.entries.insert(
            lock,
            DirEntry {
                residence: Residence::Server,
                home_server,
            },
        ) {
            if let Residence::Switch { qid } = prev.residence {
                self.by_qid.remove(&qid);
            }
        }
    }

    /// Install a switch-resident lock with queue region `qid`.
    ///
    /// # Panics
    /// If `qid` is already mapped to a different lock.
    pub fn set_switch_resident(&mut self, lock: LockId, qid: usize, home_server: usize) {
        if let Some(&existing) = self.by_qid.get(&qid) {
            assert_eq!(
                existing, lock,
                "queue region {qid} already assigned to {existing}"
            );
        }
        if let Some(prev) = self.entries.get(&lock) {
            if let Residence::Switch { qid: old_qid } = prev.residence {
                if old_qid != qid {
                    self.by_qid.remove(&old_qid);
                }
            }
        }
        self.entries.insert(
            lock,
            DirEntry {
                residence: Residence::Switch { qid },
                home_server,
            },
        );
        self.by_qid.insert(qid, lock);
    }

    /// The lock occupying queue region `qid`, if any.
    pub fn lock_of_qid(&self, qid: usize) -> Option<LockId> {
        self.by_qid.get(&qid).copied()
    }

    /// All switch-resident locks as `(lock, qid, home_server)`.
    pub fn switch_resident(&self) -> Vec<(LockId, usize, usize)> {
        let mut v: Vec<_> = self
            .entries
            .iter()
            .filter_map(|(&lock, e)| match e.residence {
                Residence::Switch { qid } => Some((lock, qid, e.home_server)),
                Residence::Server => None,
            })
            .collect();
        v.sort_by_key(|&(lock, _, _)| lock);
        v
    }

    /// Number of directory entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the directory has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Dense index of `lock`, interning it on first sight. The index
    /// is stable for the directory's lifetime (until [`clear`]); the
    /// data plane uses it to address per-lock counter arrays without a
    /// per-epoch hash-map drain.
    ///
    /// [`clear`]: LockDirectory::clear
    pub fn lock_index(&mut self, lock: LockId) -> usize {
        match self.index_of.entry(lock) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get() as usize,
            std::collections::hash_map::Entry::Vacant(e) => {
                let idx = self.interned.len() as u32;
                e.insert(idx);
                self.interned.push(lock);
                idx as usize
            }
        }
    }

    /// The lock interned at `idx` (inverse of [`lock_index`]).
    ///
    /// [`lock_index`]: LockDirectory::lock_index
    ///
    /// # Panics
    /// If `idx` was never returned by `lock_index`.
    pub fn lock_of_index(&self, idx: usize) -> LockId {
        self.interned[idx]
    }

    /// Number of interned locks (the size dense counter arrays must
    /// cover).
    pub fn interned_len(&self) -> usize {
        self.interned.len()
    }

    /// Drop every entry (switch reboot). Also forgets the interned
    /// lock indices: a rebooted switch reassigns its table slots.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.by_qid.clear();
        self.index_of.clear();
        self.interned.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_lock_is_none() {
        let d = LockDirectory::new();
        assert_eq!(d.get(LockId(1)), None);
        assert!(d.is_empty());
    }

    #[test]
    fn install_and_move() {
        let mut d = LockDirectory::new();
        d.set_server_resident(LockId(1), 0);
        assert_eq!(
            d.get(LockId(1)),
            Some(DirEntry {
                residence: Residence::Server,
                home_server: 0
            })
        );
        // Promote to switch.
        d.set_switch_resident(LockId(1), 7, 0);
        assert_eq!(
            d.get(LockId(1)).unwrap().residence,
            Residence::Switch { qid: 7 }
        );
        assert_eq!(d.lock_of_qid(7), Some(LockId(1)));
        // Demote back to server; qid is freed.
        d.set_server_resident(LockId(1), 0);
        assert_eq!(d.lock_of_qid(7), None);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn rebind_same_lock_new_qid() {
        let mut d = LockDirectory::new();
        d.set_switch_resident(LockId(1), 3, 0);
        d.set_switch_resident(LockId(1), 4, 0);
        assert_eq!(d.lock_of_qid(3), None);
        assert_eq!(d.lock_of_qid(4), Some(LockId(1)));
    }

    #[test]
    #[should_panic(expected = "already assigned")]
    fn qid_collision_panics() {
        let mut d = LockDirectory::new();
        d.set_switch_resident(LockId(1), 3, 0);
        d.set_switch_resident(LockId(2), 3, 0);
    }

    #[test]
    fn switch_resident_listing_sorted() {
        let mut d = LockDirectory::new();
        d.set_switch_resident(LockId(5), 0, 1);
        d.set_switch_resident(LockId(2), 1, 0);
        d.set_server_resident(LockId(9), 1);
        assert_eq!(
            d.switch_resident(),
            vec![(LockId(2), 1, 0), (LockId(5), 0, 1)]
        );
    }

    #[test]
    fn clear_empties() {
        let mut d = LockDirectory::new();
        d.set_switch_resident(LockId(5), 0, 1);
        d.clear();
        assert!(d.is_empty());
        assert_eq!(d.lock_of_qid(0), None);
    }

    #[test]
    fn intern_is_stable_and_survives_residence_flips() {
        let mut d = LockDirectory::new();
        let a = d.lock_index(LockId(7));
        let b = d.lock_index(LockId(3));
        assert_ne!(a, b);
        // Re-interning returns the same slot.
        assert_eq!(d.lock_index(LockId(7)), a);
        // Residence changes never move the slot.
        d.set_switch_resident(LockId(7), 0, 1);
        d.set_server_resident(LockId(7), 1);
        assert_eq!(d.lock_index(LockId(7)), a);
        assert_eq!(d.lock_of_index(a), LockId(7));
        assert_eq!(d.lock_of_index(b), LockId(3));
        assert_eq!(d.interned_len(), 2);
        // Reboot forgets the interning.
        d.clear();
        assert_eq!(d.interned_len(), 0);
        assert_eq!(d.lock_index(LockId(3)), 0);
    }
}
