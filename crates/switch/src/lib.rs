//! # netlock-switch
//!
//! The programmable-switch substrate and the NetLock switch program.
//!
//! This crate plays the role of the paper's 1704 lines of P4 plus the
//! Python control plane. The bottom layer ([`register`]) models Tofino's
//! stateful memory *with its constraints enforced* — one
//! read-modify-write per register array per pipeline pass, ascending
//! stage order — so the lock logic built on top
//! ([`shared_queue`], [`engine`], [`priority`]) is structurally faithful
//! to what compiles on the ASIC: circular queues over register arrays, a
//! pooled shared queue spanning stages with runtime-adjustable per-lock
//! regions, and Algorithm 2's resubmit-based grant/release cascade.
//!
//! Layers, bottom-up:
//! - [`register`] — register arrays, passes, the access discipline
//! - [`slot`] — the 20-byte queue slot (mode, txn, client IP, metadata)
//! - [`shared_queue`] — pooled circular queues (Figure 5)
//! - [`engine`] — the FCFS engine: Algorithm 2 (Figure 6 cases)
//! - [`priority`] — per-stage priority queues (§4.4)
//! - [`meter`] — token-bucket tenant quotas (§4.4)
//! - [`directory`] — the lock match-action table
//! - [`pipes`] — multi-pipeline layout: NetLock's egress-pipe placement
//!   and its zero-recirculation property (§4.2)
//! - [`action_buf`] — the fixed-capacity per-packet action buffer
//! - [`dataplane`] — Algorithm 1: the full packet-processing module,
//!   including the q1/q2 overflow protocol (§4.3)
//! - [`control`] — Algorithm 3 knapsack allocation, measurement
//!   harvesting, migration planning, lease expiry (§4.3, §4.5)
//! - [`node`] — the simulation node gluing it to `netlock-sim`
//! - [`analysis`] — static feasibility checking: access-trace recording,
//!   the Tofino resource model, and the exhaustive path explorer
//! - [`txn`] — the packet-transaction IR: declarative per-packet
//!   programs, statically verified and lowered onto pipeline stages,
//!   differential-tested against a reference interpreter

#![warn(missing_docs)]

pub mod action_buf;
pub mod analysis;
pub mod control;
pub mod dataplane;
pub mod directory;
pub mod engine;
pub mod meter;
pub mod node;
pub mod partition;
pub mod pipes;
pub mod priority;
pub mod register;
pub mod replication;
pub mod shared_queue;
pub mod slot;
pub mod txn;

pub use action_buf::{ActionBuf, ACTION_BUF_CAP};
pub use dataplane::{DataPlane, DpAction, DpStats, DropReason, Engine};
pub use node::{AutoRealloc, SwitchConfig, SwitchNode, SwitchNodeStats};
pub use partition::PartitionMap;
pub use replication::{
    ChainController, ControllerConfig, ControllerStats, ReplConfig, ReplStats, ReplSwitch,
};
