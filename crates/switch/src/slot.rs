//! Queue-slot representation.
//!
//! Each slot in a lock queue stores the fields §4.2 lists — mode,
//! transaction ID, client IP — plus the optional timestamp / tenant
//! metadata. On Tofino these are field-parallel register arrays sharing
//! one index; we model them as one logical array of `Slot` records, which
//! is the stricter one-access-per-pass reading.

use netlock_proto::{ClientAddr, LockMode, LockRequest, Priority, TenantId, TxnId};

/// One queue slot (≈ 20 bytes on the wire, as in the paper's 100K × 20B
/// shared queue).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Slot {
    /// False for never-written / cleared cells.
    pub valid: bool,
    /// Shared or exclusive request.
    pub mode: LockMode,
    /// Requesting transaction.
    pub txn: TxnId,
    /// Where the grant notification goes.
    pub client: ClientAddr,
    /// Tenant of the requester (quota policies).
    pub tenant: TenantId,
    /// Priority class of the requester.
    pub priority: Priority,
    /// Issue timestamp (ns), used by the lease sweeper.
    pub issued_at_ns: u64,
    /// Set once the request has been granted. The FCFS engine does not
    /// need this bit (Algorithm 2's invariants imply grant state); the
    /// priority engine sets it to track holders across levels.
    pub granted: bool,
    /// When the grant happened (ns); drives lease expiry for the
    /// priority engine. Zero until granted.
    pub granted_at_ns: u64,
}

impl Slot {
    /// An empty (invalid) slot; the register-file reset value.
    pub const EMPTY: Slot = Slot {
        valid: false,
        mode: LockMode::Shared,
        txn: TxnId(0),
        client: ClientAddr(0),
        tenant: TenantId(0),
        priority: Priority(0),
        issued_at_ns: 0,
        granted: false,
        granted_at_ns: 0,
    };

    /// Build a slot from an incoming acquire request.
    pub fn from_request(req: &LockRequest) -> Slot {
        Slot {
            valid: true,
            mode: req.mode,
            txn: req.txn,
            client: req.client,
            tenant: req.tenant,
            priority: req.priority,
            issued_at_ns: req.issued_at_ns,
            granted: false,
            granted_at_ns: 0,
        }
    }

    /// Convert back to the request form (for pushing to a server or
    /// re-issuing a grant).
    pub fn to_request(&self, lock: netlock_proto::LockId) -> LockRequest {
        LockRequest {
            lock,
            mode: self.mode,
            txn: self.txn,
            client: self.client,
            tenant: self.tenant,
            priority: self.priority,
            issued_at_ns: self.issued_at_ns,
        }
    }
}

impl Default for Slot {
    fn default() -> Self {
        Slot::EMPTY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlock_proto::LockId;

    #[test]
    fn empty_slot_is_invalid() {
        let empty = Slot::EMPTY;
        assert!(!empty.valid);
        assert!(!empty.granted);
        assert_eq!(Slot::default(), empty);
    }

    #[test]
    fn request_roundtrip() {
        let req = LockRequest {
            lock: LockId(9),
            mode: LockMode::Exclusive,
            txn: TxnId(4),
            client: ClientAddr(8),
            tenant: TenantId(2),
            priority: Priority(1),
            issued_at_ns: 77,
        };
        let slot = Slot::from_request(&req);
        assert!(slot.valid);
        assert!(!slot.granted);
        assert_eq!(slot.to_request(LockId(9)), req);
    }
}
