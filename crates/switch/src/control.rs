//! The switch control plane (§4.3, §4.5).
//!
//! Responsibilities, as in the paper:
//! - create/delete locks and assign memory between switch and servers,
//!   using the optimal fractional-knapsack allocation (Algorithm 3);
//! - measure per-lock request rate `r_i` and contention `c_i` from the
//!   data-plane counters;
//! - move locks between switch and servers when popularity changes,
//!   draining queues before any move;
//! - periodically poll the data plane to clear expired leases (failure
//!   and deadlock handling).

use netlock_proto::{ClientAddr, LockId, LockMode, Priority, ReleaseRequest};

use crate::dataplane::{DataPlane, Engine};
use crate::directory::Residence;

/// Measured workload statistics for one lock.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct LockStats {
    /// The lock.
    pub lock: LockId,
    /// Request rate `r_i` (requests per second, or any consistent unit —
    /// only ratios matter to the allocator).
    pub rate: f64,
    /// Maximum contention `c_i`: the most concurrent outstanding
    /// requests observed/expected for this lock. Never zero.
    pub contention: u32,
    /// The lock's home server.
    pub home_server: usize,
}

/// Result of the memory allocation.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Allocation {
    /// Locks placed in the switch: `(lock, slots, home_server)`, in
    /// allocation (descending `r/c`) order.
    pub in_switch: Vec<(LockId, u32, usize)>,
    /// Locks left to their home servers.
    pub in_server: Vec<(LockId, usize)>,
}

impl Allocation {
    /// Total switch slots consumed.
    pub fn slots_used(&self) -> u32 {
        self.in_switch.iter().map(|&(_, s, _)| s).sum()
    }

    /// The objective value `Σ r_i · s_i / c_i` this allocation attains
    /// (the request rate the switch is guaranteed to absorb).
    pub fn objective(&self, stats: &[LockStats]) -> f64 {
        self.in_switch
            .iter()
            .map(|&(lock, s, _)| {
                let st = stats
                    .iter()
                    .find(|st| st.lock == lock)
                    .expect("allocation references unknown lock");
                st.rate * s as f64 / st.contention as f64
            })
            .sum()
    }
}

/// Algorithm 3: optimal memory allocation.
///
/// Maximizes `Σ r_i·s_i/c_i` subject to `Σ s_i ≤ capacity`, `s_i ≤ c_i`
/// by allocating slots to locks in decreasing `r_i/c_i` order. Ties are
/// broken by lock id so the allocation is deterministic.
pub fn knapsack_allocate(stats: &[LockStats], capacity: u32) -> Allocation {
    knapsack_allocate_bounded(stats, capacity, usize::MAX)
}

/// [`knapsack_allocate`] with a bound on the number of switch-resident
/// locks — the match-action table and per-region registers only
/// describe `max_regions` queues (10 000 in the paper-default layout),
/// so slots past that limit stay with the servers.
pub fn knapsack_allocate_bounded(
    stats: &[LockStats],
    capacity: u32,
    max_regions: usize,
) -> Allocation {
    let mut order: Vec<&LockStats> = stats.iter().collect();
    order.sort_by(|a, b| {
        let va = a.rate / a.contention.max(1) as f64;
        let vb = b.rate / b.contention.max(1) as f64;
        vb.partial_cmp(&va)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.lock.cmp(&b.lock))
    });
    let mut alloc = Allocation::default();
    let mut available = capacity;
    for st in order {
        debug_assert!(st.contention > 0, "contention must be at least 1");
        let s = available.min(st.contention.max(1));
        if s > 0 && alloc.in_switch.len() < max_regions {
            alloc.in_switch.push((st.lock, s, st.home_server));
            available -= s;
        } else {
            alloc.in_server.push((st.lock, st.home_server));
        }
    }
    alloc
}

/// A strawman allocator for the paper's Figure 13/14 comparison: gives
/// regions to a *random* subset of locks (seeded, deterministic),
/// ignoring popularity.
pub fn random_allocate(stats: &[LockStats], capacity: u32, seed: u64) -> Allocation {
    // xorshift permutation, deterministic and dependency-free.
    let mut order: Vec<usize> = (0..stats.len()).collect();
    let mut state = seed | 1;
    for i in (1..order.len()).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        order.swap(i, (state as usize) % (i + 1));
    }
    let mut alloc = Allocation::default();
    let mut available = capacity;
    for &i in &order {
        let st = &stats[i];
        let s = available.min(st.contention.max(1));
        if s > 0 {
            alloc.in_switch.push((st.lock, s, st.home_server));
            available -= s;
        } else {
            alloc.in_server.push((st.lock, st.home_server));
        }
    }
    alloc
}

/// Program an allocation into an **empty** FCFS data plane: regions are
/// laid out contiguously from slot 0 (no fragmentation — this is the
/// "periodic reorganization" §4.3 describes, applied at install time).
///
/// # Panics
/// If the data plane is not FCFS, a region is non-empty, or the
/// allocation exceeds pooled memory.
pub fn apply_allocation(dp: &mut DataPlane, alloc: &Allocation) {
    let Engine::Fcfs(_) = dp.engine() else {
        panic!("apply_allocation requires the FCFS engine");
    };
    let mut cursor = 0u32;
    for (qid, &(lock, slots, home)) in alloc.in_switch.iter().enumerate() {
        let Engine::Fcfs(q) = dp.engine_mut() else {
            unreachable!()
        };
        q.cp_set_region(qid, cursor, cursor + slots);
        cursor += slots;
        dp.directory_mut().set_switch_resident(lock, qid, home);
    }
    for &(lock, home) in &alloc.in_server {
        dp.directory_mut().set_server_resident(lock, home);
    }
}

/// Harvest `(r_i, c_i)` measurements from the data-plane counters for
/// every switch-resident lock, resetting the counters (one measurement
/// epoch). `epoch_secs` converts counts to rates.
pub fn harvest_stats(dp: &mut DataPlane, epoch_secs: f64) -> Vec<LockStats> {
    let resident = dp.directory().switch_resident();
    let mut out = Vec::with_capacity(resident.len());
    for (lock, qid, home) in resident {
        let Engine::Fcfs(q) = dp.engine_mut() else {
            return out;
        };
        let reqs = q.cp_take_req_count(qid);
        let peak = q.cp_take_max_count(qid);
        out.push(LockStats {
            lock,
            rate: reqs as f64 / epoch_secs.max(1e-9),
            contention: peak.max(1),
            home_server: home,
        });
    }
    out
}

/// One step of the lock-migration plan between two allocations.
#[derive(Clone, PartialEq, Debug)]
pub enum MigrationOp {
    /// Move a lock out of the switch to its home server: start draining
    /// (new requests buffer in q2), hand ownership over once q1 empties.
    Demote {
        /// Lock to demote.
        lock: LockId,
    },
    /// Move a server lock into the switch at region `qid`, `[left,right)`.
    Promote {
        /// Lock to promote.
        lock: LockId,
        /// Destination queue region.
        qid: usize,
        /// Region start (global slot index).
        left: u32,
        /// Region end (exclusive).
        right: u32,
        /// The lock's home server (q2 owner after promotion).
        home_server: usize,
    },
}

/// Diff the current directory against a target allocation and produce
/// the migration steps. Locks whose region size changes are demoted and
/// re-promoted (drain-then-move, as the paper requires).
///
/// The returned ops list demotions first — they free the memory the
/// promotions assume.
pub fn plan_migration(dp: &DataPlane, target: &Allocation) -> Vec<MigrationOp> {
    let mut ops = Vec::new();
    let current = dp.directory().switch_resident();
    // Target layout: lock → (qid, left, right, home).
    let mut cursor = 0u32;
    let mut target_regions = Vec::new();
    for (qid, &(lock, slots, home)) in target.in_switch.iter().enumerate() {
        target_regions.push((lock, qid, cursor, cursor + slots, home));
        cursor += slots;
    }
    // Demote anything not in the target set or whose region changed.
    for &(lock, qid, _home) in &current {
        let keep = target_regions.iter().any(|&(l, tq, tl, tr, _)| {
            if l != lock {
                return false;
            }
            let Engine::Fcfs(q) = dp.engine() else {
                return false;
            };
            let v = q.cp_region(qid);
            tq == qid && tl == v.left && tr == v.right
        });
        if !keep {
            ops.push(MigrationOp::Demote { lock });
        }
    }
    // Promote anything not currently resident with the right region.
    for &(lock, qid, left, right, home) in &target_regions {
        let already = dp
            .directory()
            .get(lock)
            .map(|e| {
                if e.residence != (Residence::Switch { qid }) {
                    return false;
                }
                let Engine::Fcfs(q) = dp.engine() else {
                    return false;
                };
                let v = q.cp_region(qid);
                v.left == left && v.right == right
            })
            .unwrap_or(false);
        if !already {
            ops.push(MigrationOp::Promote {
                lock,
                qid,
                left,
                right,
                home_server: home,
            });
        }
    }
    ops
}

/// Find switch-resident lock holders whose lease has expired and emit
/// the force-release the control plane would issue for each (§4.5:
/// "the switch control plane periodically polls the data plane to clear
/// expired transactions").
///
/// Holders in the FCFS engine are derived from Algorithm 2's invariant:
/// the head run of shared entries, or the single exclusive head.
pub fn expired_leases(dp: &DataPlane, now_ns: u64, lease_ns: u64) -> Vec<ReleaseRequest> {
    let mut out = Vec::new();
    match dp.engine() {
        Engine::Fcfs(q) => {
            for (lock, qid, _home) in dp.directory().switch_resident() {
                let entries = q.cp_entries(qid);
                let Some(head) = entries.first() else {
                    continue;
                };
                // Holders derived from Algorithm 2's invariant: the head
                // run of shared entries, or the single exclusive head.
                let holders: &[crate::slot::Slot] = match head.mode {
                    LockMode::Exclusive => &entries[..1],
                    LockMode::Shared => {
                        let n = entries
                            .iter()
                            .take_while(|s| s.mode == LockMode::Shared)
                            .count();
                        &entries[..n]
                    }
                };
                for h in holders {
                    if now_ns.saturating_sub(h.issued_at_ns) > lease_ns {
                        out.push(ReleaseRequest {
                            lock,
                            txn: h.txn,
                            mode: h.mode,
                            client: ClientAddr(0), // control-plane origin
                            priority: Priority(0),
                        });
                    }
                }
            }
        }
        Engine::Priority(e) => {
            // The priority engine marks holders explicitly.
            for (lock, qid, _home) in dp.directory().switch_resident() {
                for level in 0..e.levels() {
                    for h in e.cp_level_entries(level, qid) {
                        if h.granted && now_ns.saturating_sub(h.granted_at_ns) > lease_ns {
                            out.push(ReleaseRequest {
                                lock,
                                txn: h.txn,
                                mode: h.mode,
                                client: ClientAddr(0),
                                priority: h.priority,
                            });
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shared_queue::SharedQueueLayout;
    use netlock_proto::{LockRequest, NetLockMsg, TenantId, TxnId};

    fn st(lock: u32, rate: f64, contention: u32) -> LockStats {
        LockStats {
            lock: LockId(lock),
            rate,
            contention,
            home_server: 0,
        }
    }

    #[test]
    fn paper_figure7_example() {
        // Lock 1: two clients at 100 req/s each (r=200, c=2);
        // lock 2: one client at 10 req/s (r=10, c=1); switch has 2 slots.
        let stats = vec![st(1, 200.0, 2), st(2, 10.0, 1)];
        let alloc = knapsack_allocate(&stats, 2);
        assert_eq!(alloc.in_switch, vec![(LockId(1), 2, 0)]);
        assert_eq!(alloc.in_server, vec![(LockId(2), 0)]);
        // The optimal allocation absorbs all 200 req/s of lock 1.
        assert_eq!(alloc.objective(&stats), 200.0);
    }

    #[test]
    fn allocation_respects_capacity_and_contention() {
        let stats = vec![st(1, 50.0, 3), st(2, 100.0, 10), st(3, 40.0, 1)];
        let alloc = knapsack_allocate(&stats, 8);
        assert!(alloc.slots_used() <= 8);
        for &(lock, s, _) in &alloc.in_switch {
            let c = stats.iter().find(|x| x.lock == lock).unwrap().contention;
            assert!(s <= c, "never allocate more than c_i");
        }
        // Highest r/c first: lock 3 (40), lock 1 (16.7), lock 2 (10).
        assert_eq!(alloc.in_switch[0].0, LockId(3));
        assert_eq!(alloc.in_switch[1], (LockId(1), 3, 0));
        // Remaining 4 slots go to lock 2 (partial).
        assert_eq!(alloc.in_switch[2], (LockId(2), 4, 0));
    }

    #[test]
    fn knapsack_beats_random_on_skew() {
        // Skewed: a few hot locks, many cold ones.
        let mut stats = Vec::new();
        for i in 0..5 {
            stats.push(st(i, 1000.0, 4));
        }
        for i in 5..100 {
            stats.push(st(i, 1.0, 4));
        }
        let cap = 20;
        let good = knapsack_allocate(&stats, cap).objective(&stats);
        let rand = random_allocate(&stats, cap, 7).objective(&stats);
        assert!(
            good > rand * 2.0,
            "knapsack {good} should beat random {rand} on skew"
        );
    }

    #[test]
    fn knapsack_optimality_vs_exhaustive() {
        // Brute-force all integer allocations for small instances and
        // confirm Algorithm 3 attains the maximum objective.
        let stats = vec![st(1, 9.0, 3), st(2, 8.0, 2), st(3, 3.0, 1), st(4, 10.0, 4)];
        let cap = 6u32;
        let algo = knapsack_allocate(&stats, cap).objective(&stats);

        let mut best = 0.0f64;
        let caps: Vec<u32> = stats.iter().map(|s| s.contention).collect();
        fn rec(i: usize, left: u32, acc: f64, stats: &[LockStats], caps: &[u32], best: &mut f64) {
            if i == stats.len() {
                *best = best.max(acc);
                return;
            }
            for s in 0..=caps[i].min(left) {
                rec(
                    i + 1,
                    left - s,
                    acc + stats[i].rate * s as f64 / stats[i].contention as f64,
                    stats,
                    caps,
                    best,
                );
            }
        }
        rec(0, cap, 0.0, &stats, &caps, &mut best);
        assert!(
            (algo - best).abs() < 1e-9,
            "algorithm {algo} vs exhaustive {best}"
        );
    }

    #[test]
    fn zero_capacity_sends_everything_to_servers() {
        let stats = vec![st(1, 5.0, 2), st(2, 1.0, 1)];
        let alloc = knapsack_allocate(&stats, 0);
        assert!(alloc.in_switch.is_empty());
        assert_eq!(alloc.in_server.len(), 2);
    }

    #[test]
    fn random_allocate_is_deterministic() {
        let stats: Vec<LockStats> = (0..50).map(|i| st(i, i as f64, 2)).collect();
        assert_eq!(
            random_allocate(&stats, 10, 3),
            random_allocate(&stats, 10, 3)
        );
    }

    fn dp_small() -> DataPlane {
        DataPlane::new_fcfs(&SharedQueueLayout::small(2, 16, 8))
    }

    fn acquire(lock: u32, txn: u64, at: u64) -> NetLockMsg {
        NetLockMsg::Acquire(LockRequest {
            lock: LockId(lock),
            mode: LockMode::Exclusive,
            txn: TxnId(txn),
            client: ClientAddr(txn as u32),
            tenant: TenantId(0),
            priority: Priority(0),
            issued_at_ns: at,
        })
    }

    #[test]
    fn apply_allocation_programs_regions_contiguously() {
        let mut dp = dp_small();
        let stats = vec![st(1, 10.0, 3), st(2, 100.0, 2), st(3, 0.1, 5)];
        let alloc = knapsack_allocate(&stats, 6);
        apply_allocation(&mut dp, &alloc);
        // lock 2 (r/c=50) first: region [0,2); lock 1 (3.3): [2,5);
        // lock 3 (0.02): 1 remaining slot [5,6).
        let Engine::Fcfs(q) = dp.engine() else {
            unreachable!()
        };
        let resident = dp.directory().switch_resident();
        assert_eq!(resident.len(), 3);
        let v2 = q.cp_region(0);
        assert_eq!((v2.left, v2.right), (0, 2));
        let v1 = q.cp_region(1);
        assert_eq!((v1.left, v1.right), (2, 5));
        let v3 = q.cp_region(2);
        assert_eq!((v3.left, v3.right), (5, 6));
    }

    #[test]
    fn harvest_measures_and_resets() {
        let mut dp = dp_small();
        let alloc = knapsack_allocate(&[st(1, 1.0, 4)], 4);
        apply_allocation(&mut dp, &alloc);
        for t in 0..3 {
            dp.process_collect(acquire(1, t, 0), 0);
        }
        let stats = harvest_stats(&mut dp, 1.0);
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].rate, 3.0);
        assert_eq!(stats[0].contention, 3);
        // Second harvest sees a fresh epoch.
        let stats = harvest_stats(&mut dp, 1.0);
        assert_eq!(stats[0].rate, 0.0);
        assert_eq!(stats[0].contention, 1);
    }

    #[test]
    fn plan_migration_demotes_and_promotes() {
        let mut dp = dp_small();
        let alloc1 = knapsack_allocate(&[st(1, 100.0, 4), st(2, 1.0, 4)], 4);
        apply_allocation(&mut dp, &alloc1);
        // New workload: lock 2 hot, lock 1 cold.
        let alloc2 = knapsack_allocate(&[st(1, 1.0, 4), st(2, 100.0, 4)], 4);
        let ops = plan_migration(&dp, &alloc2);
        assert!(ops.contains(&MigrationOp::Demote { lock: LockId(1) }));
        assert!(ops.iter().any(|op| matches!(
            op,
            MigrationOp::Promote { lock, .. } if *lock == LockId(2)
        )));
    }

    #[test]
    fn plan_migration_noop_when_unchanged() {
        let mut dp = dp_small();
        let alloc = knapsack_allocate(&[st(1, 100.0, 4)], 4);
        apply_allocation(&mut dp, &alloc);
        assert!(plan_migration(&dp, &alloc).is_empty());
    }

    #[test]
    fn expired_leases_finds_stale_holders() {
        let mut dp = dp_small();
        let alloc = knapsack_allocate(&[st(1, 1.0, 4)], 4);
        apply_allocation(&mut dp, &alloc);
        dp.process_collect(acquire(1, 7, 1_000), 1_000);
        dp.process_collect(acquire(1, 8, 2_000), 2_000); // queued, not a holder
        let lease = 1_000_000;
        assert!(expired_leases(&dp, 500_000, lease).is_empty());
        let expired = expired_leases(&dp, 2_000_000, lease);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].txn, TxnId(7));
        assert_eq!(expired[0].mode, LockMode::Exclusive);
    }

    #[test]
    fn expired_leases_shared_holders_all_reported() {
        let mut dp = dp_small();
        let alloc = knapsack_allocate(&[st(1, 1.0, 4)], 4);
        apply_allocation(&mut dp, &alloc);
        for t in 0..2 {
            dp.process_collect(
                NetLockMsg::Acquire(LockRequest {
                    lock: LockId(1),
                    mode: LockMode::Shared,
                    txn: TxnId(t),
                    client: ClientAddr(t as u32),
                    tenant: TenantId(0),
                    priority: Priority(0),
                    issued_at_ns: 0,
                }),
                0,
            );
        }
        let expired = expired_leases(&dp, 10_000_000, 1_000);
        assert_eq!(expired.len(), 2, "both shared holders expired");
    }
}
