//! The NetLock switch data-plane module.
//!
//! Combines the lock directory (match-action table), the FCFS or
//! priority lock engine, per-tenant meters and the q1/q2 overflow
//! protocol into the packet-processing function the ToR switch runs for
//! NetLock traffic (Algorithm 1 of the paper). Non-NetLock packets never
//! reach this module.
//!
//! The module is a pure state machine: `process` consumes a message and
//! writes the actions the switch must take (grants to mirror out,
//! forwards to lock servers, push-protocol notifications) into a
//! caller-owned [`ActionBuf`]. The sim node in [`crate::node`] turns
//! actions into packets; tests drive the state machine directly.
//!
//! Hot-path memory discipline: `process` performs no steady-state heap
//! allocation. Actions land in the reusable `ActionBuf`, release-grant
//! cascades collect into a reusable scratch buffer, tenant meters live
//! in a dense array indexed by `TenantId`, and per-lock forward counts
//! live in a dense array indexed by the directory's interned lock
//! index — mirroring the ASIC, whose tables and counters are all fixed
//! at compile time.

use netlock_proto::{
    GrantMsg, Grantor, LockId, LockRequest, NetLockMsg, ReleaseRequest, TenantId, TxnId,
};

use crate::action_buf::ActionBuf;
use crate::analysis::layout::ProgramLayout;
use crate::analysis::trace::TraceSink;
use crate::directory::{DirEntry, LockDirectory, Residence};
use crate::engine::{AcquireOutcome, FcfsEngine, PassAllocator};
use crate::meter::TokenBucket;
use crate::priority::{PriorityEngine, PriorityLayout};
use crate::shared_queue::{SharedQueue, SharedQueueLayout};
use crate::slot::Slot;

/// Which lock engine the data plane is compiled with.
// One `Engine` exists per data plane, built once and referenced in
// place; the size gap between variants never costs a hot-path move.
#[allow(clippy::large_enum_variant)]
pub enum Engine {
    /// Single FIFO queue per lock: starvation-freedom / FCFS (§4.4).
    Fcfs(SharedQueue),
    /// Per-stage priority queues: service differentiation (§4.4).
    Priority(PriorityEngine),
}

/// Per-lock overflow-protocol state (§4.3).
///
/// `forwarded`/`pushed` count requests sent to q2 and returned from q2;
/// overflow mode ends only when they match and the server reports q2
/// empty, which guarantees no request is in flight and single-queue FCFS
/// order is preserved.
#[derive(Clone, Copy, Debug, Default)]
struct OverflowState {
    active: bool,
    /// Requests forwarded to the server's q2 while in overflow mode.
    forwarded: u64,
    /// Requests returned from q2 via the push protocol.
    pushed: u64,
    /// A QueueSpace notification is outstanding.
    space_pending: bool,
    /// The lock is draining toward demotion: q1 is not refilled from q2
    /// and ownership moves to the server once q1 empties.
    draining: bool,
    /// Grants suppressed: a backup switch still owns grant order for
    /// this lock (restart handback, §4.5). Requests queue; nothing is
    /// granted until CtrlHandback arrives.
    suppressed: bool,
}

/// An action the switch must take after processing a message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DpAction {
    /// Mirror a grant notification to the client.
    SendGrant(GrantMsg),
    /// Forward an acquire to lock server `server`.
    ForwardAcquire {
        /// Destination lock server index.
        server: usize,
        /// The request.
        req: LockRequest,
        /// Overflow mark: buffer in q2, do not process.
        buffer_only: bool,
    },
    /// Forward a release to lock server `server` (server-resident lock).
    ForwardRelease {
        /// Destination lock server index.
        server: usize,
        /// The release.
        rel: ReleaseRequest,
    },
    /// Tell server `server` that q1 of `lock` has `space` free slots.
    SendQueueSpace {
        /// Destination lock server index.
        server: usize,
        /// The lock whose q1 drained.
        lock: LockId,
        /// Free q1 slots.
        space: u32,
    },
    /// Drop the packet (over-quota tenant, unknown lock, malformed).
    Drop {
        /// Why the packet was dropped.
        reason: DropReason,
    },
}

/// Why the data plane dropped a packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DropReason {
    /// Tenant exceeded its meter (performance-isolation policy).
    OverQuota,
    /// Lock not present in the directory and no home server known.
    UnknownLock,
    /// Priority-engine region overflow (not supported with the q2
    /// protocol; sized to contention instead — see DESIGN.md).
    PriorityOverflow,
}

/// Running counters exposed by the data plane.
#[derive(Clone, Copy, Debug, Default)]
pub struct DpStats {
    /// Acquires granted directly by the switch.
    pub grants_immediate: u64,
    /// Acquires queued in switch memory.
    pub queued: u64,
    /// Grants issued on release (head handoffs and shared cascades).
    pub grants_on_release: u64,
    /// Acquires forwarded to servers (server-resident locks).
    pub forwarded_server_locks: u64,
    /// Acquires forwarded with the buffer-only overflow mark.
    pub forwarded_overflow: u64,
    /// Releases processed.
    pub releases: u64,
    /// Spurious releases (empty queue).
    pub releases_spurious: u64,
    /// Packets dropped by tenant meters.
    pub quota_drops: u64,
    /// Total pipeline passes (1 per packet + resubmits).
    pub passes: u64,
    /// Push-protocol batches accepted.
    pub pushes: u64,
}

/// The NetLock data plane.
pub struct DataPlane {
    directory: LockDirectory,
    engine: Engine,
    /// Static resource model, registered at construction from whichever
    /// engine the program was "compiled" with.
    layout: ProgramLayout,
    overflow: Vec<OverflowState>,
    /// Per-tenant meters, dense by `TenantId` (`None` = unmetered).
    /// Tenant ids are assigned densely by the rack harness, so the
    /// array stays small; sizing happens at `set_tenant_meter` time,
    /// never per packet.
    meters: Vec<Option<TokenBucket>>,
    passes: PassAllocator,
    stats: DpStats,
    /// Reusable buffer for release/kickstart grant cascades; cleared
    /// per packet, so the retained capacity makes the engines'
    /// out-params allocation-free in steady state.
    grant_scratch: Vec<Slot>,
    /// Number of lock servers for default routing. Locks without a
    /// directory entry are forwarded to `hash(lock) % default_servers`
    /// — the paper's "set the destination IP to that of the server
    /// responsible for the lock": the match-action table only holds
    /// switch-resident locks, everything else routes onward. Zero means
    /// unknown locks are dropped.
    default_servers: usize,
    /// Per-lock acquire counts for server-resident locks (control-plane
    /// rate measurement for promotion decisions), dense by the
    /// directory's interned lock index. On hardware this is a
    /// count-min sketch or sampled mirror; exact counting is harmless
    /// in the model because only the heavy hitters matter.
    forward_counts: Vec<u64>,
}

impl DataPlane {
    /// A data plane with the FCFS engine over the given queue layout.
    pub fn new_fcfs(layout: &SharedQueueLayout) -> DataPlane {
        let q = SharedQueue::new(layout);
        let regions = q.max_regions();
        let mut program = ProgramLayout::new();
        q.describe(&mut program);
        DataPlane {
            directory: LockDirectory::new(),
            engine: Engine::Fcfs(q),
            layout: program,
            overflow: vec![OverflowState::default(); regions],
            meters: Vec::new(),
            passes: PassAllocator::new(),
            stats: DpStats::default(),
            grant_scratch: Vec::new(),
            default_servers: 0,
            forward_counts: Vec::new(),
        }
    }

    /// A data plane with the priority engine.
    pub fn new_priority(layout: &PriorityLayout) -> DataPlane {
        let e = PriorityEngine::new(layout);
        let regions = e.max_regions();
        let mut program = ProgramLayout::new();
        e.describe(&mut program);
        DataPlane {
            directory: LockDirectory::new(),
            engine: Engine::Priority(e),
            layout: program,
            overflow: vec![OverflowState::default(); regions],
            meters: Vec::new(),
            passes: PassAllocator::new(),
            stats: DpStats::default(),
            grant_scratch: Vec::new(),
            default_servers: 0,
            forward_counts: Vec::new(),
        }
    }

    /// Set the number of lock servers used for default routing of locks
    /// with no directory entry (the per-lock home server a client would
    /// have addressed).
    pub fn set_default_servers(&mut self, n: usize) {
        self.default_servers = n;
    }

    /// Default home server of a lock with no directory entry.
    pub fn default_server_of(&self, lock: LockId) -> Option<usize> {
        if self.default_servers == 0 {
            None
        } else {
            Some(
                ((lock.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize
                    % self.default_servers,
            )
        }
    }

    /// The directory (control-plane handle).
    pub fn directory(&self) -> &LockDirectory {
        &self.directory
    }

    /// Mutable directory access (control-plane handle).
    pub fn directory_mut(&mut self) -> &mut LockDirectory {
        &mut self.directory
    }

    /// The engine (control-plane introspection).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable engine access (control-plane operations).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Counters.
    pub fn stats(&self) -> DpStats {
        self.stats
    }

    /// Total pipeline passes so far — the hot-path subset of
    /// [`stats`], read twice per request to charge resubmit latency.
    ///
    /// [`stats`]: DataPlane::stats
    #[inline]
    pub fn passes(&self) -> u64 {
        self.stats.passes
    }

    /// [`process`] an acquire without the message-enum round trip —
    /// the batch path calls this once per unpacked element.
    ///
    /// [`process`]: DataPlane::process
    #[inline]
    pub fn process_acquire(&mut self, req: LockRequest, now_ns: u64, out: &mut ActionBuf) {
        out.clear();
        self.on_acquire(req, now_ns, out);
    }

    /// The static resource model registered at construction.
    pub fn layout(&self) -> &ProgramLayout {
        &self.layout
    }

    /// The grant path of region `qid` as a declarative
    /// [`crate::txn::TxnProgram`], sized to the region's current
    /// capacity. `None` for the priority engine (its grant path is
    /// per-level) or for an unconfigured (zero-capacity) region.
    ///
    /// The returned program is the *specification* of what
    /// [`DataPlane::process`] does on an acquire: the differential test
    /// in `tests/integration_txn.rs` holds the two to the same outcomes
    /// and register state.
    pub fn grant_path_txn(&self, qid: usize) -> Option<crate::txn::TxnProgram> {
        match &self.engine {
            Engine::Fcfs(q) => {
                let cap = q.cp_region(qid).capacity();
                (cap > 0).then(|| crate::txn::netlock::fcfs_enqueue_program(cap))
            }
            Engine::Priority(_) => None,
        }
    }

    /// Install (or remove) an access-trace sink: every pipeline pass
    /// the data plane performs afterwards records its register accesses
    /// into it (see [`crate::analysis::trace`]).
    pub fn set_trace_sink(&mut self, sink: Option<TraceSink>) {
        self.passes.set_trace_sink(sink);
    }

    /// Install a per-tenant meter (performance-isolation policy, §4.4).
    pub fn set_tenant_meter(
        &mut self,
        tenant: TenantId,
        rate_per_sec: u64,
        burst: u64,
        now_ns: u64,
    ) {
        let idx = tenant.0 as usize;
        if idx >= self.meters.len() {
            self.meters.resize(idx + 1, None);
        }
        self.meters[idx] = Some(TokenBucket::new(rate_per_sec, burst, now_ns));
    }

    /// Remove all meters.
    pub fn clear_meters(&mut self) {
        self.meters.clear();
    }

    /// Wipe data-plane state (switch reboot, §6.5: "the switch retains
    /// none of its former state or register values").
    pub fn reset(&mut self) {
        match &mut self.engine {
            Engine::Fcfs(q) => q.cp_reset_all(),
            Engine::Priority(e) => e.cp_reset_all(),
        }
        self.directory.clear();
        self.overflow
            .iter_mut()
            .for_each(|o| *o = OverflowState::default());
        self.meters.clear();
        self.stats = DpStats::default();
        self.forward_counts.clear();
    }

    /// Process one NetLock message; `now_ns` is the switch clock.
    ///
    /// Actions are written into `out` (cleared first). The caller owns
    /// the buffer and reuses it across packets, so the per-packet path
    /// performs zero heap allocation in steady state.
    pub fn process(&mut self, msg: NetLockMsg, now_ns: u64, out: &mut ActionBuf) {
        out.clear();
        match msg {
            NetLockMsg::Acquire(req) => self.on_acquire(req, now_ns, out),
            NetLockMsg::Release(rel) => self.on_release(rel, now_ns, out),
            NetLockMsg::Push { lock, reqs } => self.on_push(lock, reqs, out),
            NetLockMsg::CtrlPromoteReady { lock, reqs } => self.on_promote_ready(lock, reqs, out),
            NetLockMsg::CtrlHandback { lock } => self.on_handback(lock, out),
            // Grants / forwards / fetches pass through the switch as
            // ordinary routed traffic; the data plane does not act on
            // them (the sim node routes them by destination).
            _ => {}
        }
    }

    /// [`process`] into a freshly allocated buffer — a convenience for
    /// tests and offline analysis. Hot paths reuse a buffer instead.
    ///
    /// [`process`]: DataPlane::process
    pub fn process_collect(&mut self, msg: NetLockMsg, now_ns: u64) -> ActionBuf {
        let mut out = ActionBuf::new();
        self.process(msg, now_ns, &mut out);
        out
    }

    /// Bump the forward counter of a server-resident (or default-routed)
    /// lock, growing the dense array if the lock is new to the intern.
    fn bump_forward_count(&mut self, lock: LockId) {
        let idx = self.directory.lock_index(lock);
        if idx >= self.forward_counts.len() {
            self.forward_counts.resize(idx + 1, 0);
        }
        self.forward_counts[idx] += 1;
    }

    fn grant_of(req: &LockRequest, grantor: Grantor) -> GrantMsg {
        GrantMsg {
            lock: req.lock,
            txn: req.txn,
            mode: req.mode,
            client: req.client,
            priority: req.priority,
            grantor,
            issued_at_ns: req.issued_at_ns,
        }
    }

    fn grant_of_slot(lock: LockId, slot: &Slot) -> GrantMsg {
        GrantMsg {
            lock,
            txn: slot.txn,
            mode: slot.mode,
            client: slot.client,
            priority: slot.priority,
            grantor: Grantor::Switch,
            issued_at_ns: slot.issued_at_ns,
        }
    }

    fn on_acquire(&mut self, req: LockRequest, now_ns: u64, out: &mut ActionBuf) {
        self.stats.passes += 1;
        // Tenant meter at ingress.
        if let Some(Some(meter)) = self.meters.get_mut(req.tenant.0 as usize) {
            if !meter.try_consume(now_ns) {
                self.stats.quota_drops += 1;
                out.push(DpAction::Drop {
                    reason: DropReason::OverQuota,
                });
                return;
            }
        }
        let entry = match self.directory.get(req.lock) {
            Some(e) => e,
            None => match self.default_server_of(req.lock) {
                Some(server) => {
                    self.stats.forwarded_server_locks += 1;
                    self.bump_forward_count(req.lock);
                    out.push(DpAction::ForwardAcquire {
                        server,
                        req,
                        buffer_only: false,
                    });
                    return;
                }
                None => {
                    out.push(DpAction::Drop {
                        reason: DropReason::UnknownLock,
                    });
                    return;
                }
            },
        };
        match entry.residence {
            Residence::Server => {
                self.stats.forwarded_server_locks += 1;
                self.bump_forward_count(req.lock);
                out.push(DpAction::ForwardAcquire {
                    server: entry.home_server,
                    req,
                    buffer_only: false,
                });
            }
            Residence::Switch { qid } => {
                // Handback suppression: the backup switch still grants;
                // queue here without granting (§4.5).
                if self.overflow[qid].suppressed {
                    if let Engine::Fcfs(q) = &mut self.engine {
                        let mut pass = self.passes.begin(0);
                        let d = q.enqueue_deciding(
                            &mut pass,
                            qid,
                            Slot::from_request(&req),
                            false,
                            |_, _| false,
                        );
                        if d.full {
                            self.overflow[qid].active = true;
                            self.overflow[qid].forwarded += 1;
                            self.stats.forwarded_overflow += 1;
                            out.push(DpAction::ForwardAcquire {
                                server: entry.home_server,
                                req,
                                buffer_only: true,
                            });
                            return;
                        }
                        self.stats.queued += 1;
                    }
                    return;
                }
                // Overflow mode: preserve single-queue order by sending
                // every new request to q2 until it fully drains (§4.3).
                if self.overflow[qid].active {
                    self.overflow[qid].forwarded += 1;
                    self.stats.forwarded_overflow += 1;
                    out.push(DpAction::ForwardAcquire {
                        server: entry.home_server,
                        req,
                        buffer_only: true,
                    });
                    return;
                }
                let slot = Slot::from_request(&req);
                let (outcome, extra_passes) = match &mut self.engine {
                    Engine::Fcfs(q) => (FcfsEngine::acquire(q, &mut self.passes, qid, slot), 0),
                    Engine::Priority(e) => {
                        let (o, p) = e.acquire(&mut self.passes, qid, slot);
                        (o, p.saturating_sub(1))
                    }
                };
                self.stats.passes += extra_passes as u64;
                match outcome {
                    AcquireOutcome::Granted => {
                        self.stats.grants_immediate += 1;
                        out.push(DpAction::SendGrant(Self::grant_of(&req, Grantor::Switch)));
                    }
                    AcquireOutcome::Queued => {
                        self.stats.queued += 1;
                    }
                    AcquireOutcome::Overflow => match &self.engine {
                        Engine::Fcfs(_) => {
                            self.overflow[qid].active = true;
                            self.overflow[qid].forwarded += 1;
                            self.stats.forwarded_overflow += 1;
                            out.push(DpAction::ForwardAcquire {
                                server: entry.home_server,
                                req,
                                buffer_only: true,
                            });
                        }
                        Engine::Priority(_) => out.push(DpAction::Drop {
                            reason: DropReason::PriorityOverflow,
                        }),
                    },
                }
            }
        }
    }

    fn on_release(&mut self, rel: ReleaseRequest, now_ns: u64, out: &mut ActionBuf) {
        self.process_release_guarded(rel, now_ns, out, |_, _| true);
    }

    /// [`process`] a release with the control plane's release guard
    /// consulted in-line: `admit(lock, txn)` runs only for
    /// switch-resident locks, after the single directory lookup both
    /// decisions share (the guard used to cost a second lookup per
    /// release on the batch path). Returns `false` — with no counters
    /// touched and no actions emitted — when the guard rejects the
    /// release; server-resident and unknown locks are forwarded
    /// untouched, exactly as before.
    ///
    /// [`process`]: DataPlane::process
    pub fn process_release_guarded(
        &mut self,
        rel: ReleaseRequest,
        now_ns: u64,
        out: &mut ActionBuf,
        admit: impl FnOnce(LockId, TxnId) -> bool,
    ) -> bool {
        out.clear();
        if let Some(entry) = self.directory.get(rel.lock) {
            if matches!(entry.residence, Residence::Switch { .. }) && !admit(rel.lock, rel.txn) {
                return false;
            }
            self.stats.passes += 1;
            self.stats.releases += 1;
            self.on_release_at(rel, entry, now_ns, out);
        } else {
            self.stats.passes += 1;
            self.stats.releases += 1;
            match self.default_server_of(rel.lock) {
                Some(server) => out.push(DpAction::ForwardRelease { server, rel }),
                None => out.push(DpAction::Drop {
                    reason: DropReason::UnknownLock,
                }),
            }
        }
        true
    }

    fn on_release_at(
        &mut self,
        rel: ReleaseRequest,
        entry: DirEntry,
        now_ns: u64,
        out: &mut ActionBuf,
    ) {
        match entry.residence {
            Residence::Server => out.push(DpAction::ForwardRelease {
                server: entry.home_server,
                rel,
            }),
            Residence::Switch { qid } => {
                // Grants land in the reusable scratch buffer — the one
                // place Algorithm 2 fans out — then are copied into the
                // caller's `ActionBuf`. No per-packet allocation.
                self.grant_scratch.clear();
                let out_r = match &mut self.engine {
                    Engine::Fcfs(q) => FcfsEngine::release(
                        q,
                        &mut self.passes,
                        qid,
                        rel.mode,
                        &mut self.grant_scratch,
                    ),
                    Engine::Priority(e) => e.release(
                        &mut self.passes,
                        qid,
                        rel.mode,
                        rel.priority.0,
                        now_ns,
                        &mut self.grant_scratch,
                    ),
                };
                self.stats.passes += (out_r.passes as u64).saturating_sub(1);
                if out_r.spurious {
                    self.stats.releases_spurious += 1;
                    return;
                }
                self.stats.grants_on_release += self.grant_scratch.len() as u64;
                for s in &self.grant_scratch {
                    out.push(DpAction::SendGrant(Self::grant_of_slot(rel.lock, s)));
                }
                // q1 drained while in overflow mode → ask the server to
                // push from q2 (suppressed while draining for demotion).
                if out_r.now_empty {
                    let of = &mut self.overflow[qid];
                    if of.active && !of.space_pending && !of.draining {
                        of.space_pending = true;
                        let space = self.region_capacity(qid);
                        out.push(DpAction::SendQueueSpace {
                            server: entry.home_server,
                            lock: rel.lock,
                            space,
                        });
                    }
                }
            }
        }
    }

    /// Control-plane overflow reset after a lock server restarted with
    /// total state loss. Every q2 that server buffered is gone, so the
    /// forwarded/pushed ledgers of its switch-resident locks can never
    /// reconcile again — without this reset, a lock that was in
    /// overflow mode at the crash keeps forwarding acquires at a wiped
    /// q2 forever. The stranded q2 requests died with the server and
    /// are re-driven by client retries; the next q1 overflow restarts
    /// the protocol from clean counters.
    pub fn cp_reset_overflow_for_server(&mut self, server_idx: usize) {
        for (_, qid, home) in self.directory.switch_resident() {
            if home == server_idx {
                let of = &mut self.overflow[qid];
                of.active = false;
                of.forwarded = 0;
                of.pushed = 0;
                of.space_pending = false;
                // `draining`/`suppressed` belong to migration/handback
                // control flows; a server restart does not touch them.
            }
        }
    }

    /// Server pushes `reqs` from q2 into q1. A push with `reqs.len() <
    /// space` means q2 is (momentarily) empty; overflow mode ends when
    /// the forwarded/pushed counters agree, i.e. nothing is in flight.
    fn on_push(&mut self, lock: LockId, reqs: Box<[LockRequest]>, out: &mut ActionBuf) {
        self.stats.passes += 1;
        self.stats.pushes += 1;
        let Some(entry) = self.directory.get(lock) else {
            out.push(DpAction::Drop {
                reason: DropReason::UnknownLock,
            });
            return;
        };
        let Residence::Switch { qid } = entry.residence else {
            // Lock was demoted while the push was in flight; bounce the
            // requests to the server as owner.
            for req in reqs {
                out.push(DpAction::ForwardAcquire {
                    server: entry.home_server,
                    req,
                    buffer_only: false,
                });
            }
            return;
        };
        let n = reqs.len() as u64;
        for req in reqs {
            let slot = Slot::from_request(&req);
            let outcome = match &mut self.engine {
                Engine::Fcfs(q) => FcfsEngine::acquire(q, &mut self.passes, qid, slot),
                Engine::Priority(e) => e.acquire(&mut self.passes, qid, slot).0,
            };
            self.stats.passes += 1;
            match outcome {
                AcquireOutcome::Granted => {
                    self.stats.grants_immediate += 1;
                    out.push(DpAction::SendGrant(Self::grant_of(&req, Grantor::Switch)));
                }
                AcquireOutcome::Queued => {
                    self.stats.queued += 1;
                }
                AcquireOutcome::Overflow => {
                    // The server never pushes more than the advertised
                    // space, so q1 cannot overflow mid-push.
                    debug_assert!(false, "push overflowed q1");
                }
            }
        }
        // Overflow bookkeeping only applies in overflow mode; a Push can
        // also carry a request bounced by a server during a migration
        // race, which is a plain enqueue.
        if self.overflow[qid].active {
            self.overflow[qid].pushed += n;
            self.overflow[qid].space_pending = false;
            if self.overflow[qid].forwarded == self.overflow[qid].pushed {
                // Everything that ever went to q2 has come back and q2
                // is empty: return to normal mode.
                self.overflow[qid].active = false;
            } else if self.is_region_empty(qid) {
                // q1 is still empty (server pushed nothing but more is
                // in flight or buffered): ask again.
                self.overflow[qid].space_pending = true;
                let space = self.region_capacity(qid);
                out.push(DpAction::SendQueueSpace {
                    server: entry.home_server,
                    lock,
                    space,
                });
            }
        }
    }

    /// The requests a promoted lock accumulated at its server arrive via
    /// CtrlPromoteReady and enter the fresh queue region in order.
    fn on_promote_ready(&mut self, lock: LockId, reqs: Box<[LockRequest]>, out: &mut ActionBuf) {
        self.stats.passes += 1;
        let Some(entry) = self.directory.get(lock) else {
            out.push(DpAction::Drop {
                reason: DropReason::UnknownLock,
            });
            return;
        };
        let Residence::Switch { .. } = entry.residence else {
            // Promotion was cancelled; hand the requests back to the
            // server as owner.
            for req in reqs {
                out.push(DpAction::ForwardAcquire {
                    server: entry.home_server,
                    req,
                    buffer_only: false,
                });
            }
            return;
        };
        for req in reqs {
            let now = req.issued_at_ns;
            self.on_acquire(req, now, out);
        }
    }

    // ------------------------------------------------------------------
    // Control-plane migration hooks (§4.3: drain before moving)
    // ------------------------------------------------------------------

    /// Begin demoting `lock`: new requests are diverted to the server's
    /// q2 (buffer-only) while q1 drains. Returns true if q1 is already
    /// empty (the demotion can complete immediately).
    pub fn begin_demote(&mut self, lock: LockId) -> bool {
        let Some(entry) = self.directory.get(lock) else {
            return false;
        };
        let Residence::Switch { qid } = entry.residence else {
            return false;
        };
        self.overflow[qid].active = true;
        self.overflow[qid].draining = true;
        self.is_region_empty(qid)
    }

    /// Complete a demotion if its queue has drained. Returns the home
    /// server (now the owner) on success.
    pub fn complete_demote(&mut self, lock: LockId) -> Option<usize> {
        let entry = self.directory.get(lock)?;
        let Residence::Switch { qid } = entry.residence else {
            return None;
        };
        if !self.overflow[qid].draining || !self.is_region_empty(qid) {
            return None;
        }
        if let Engine::Fcfs(q) = &mut self.engine {
            q.cp_set_region(qid, 0, 0);
        }
        self.overflow[qid] = OverflowState::default();
        self.directory.set_server_resident(lock, entry.home_server);
        Some(entry.home_server)
    }

    /// Install the region for a lock being promoted from a server. The
    /// switch owns the lock from this moment; the server replies with
    /// the requests it buffered during the pause.
    pub fn prepare_promote(
        &mut self,
        lock: LockId,
        qid: usize,
        left: u32,
        right: u32,
        home_server: usize,
    ) {
        if let Engine::Fcfs(q) = &mut self.engine {
            q.cp_set_region(qid, left, right);
        }
        self.overflow[qid] = OverflowState::default();
        self.directory.set_switch_resident(lock, qid, home_server);
    }

    /// Begin restart handback for `lock`: queue arrivals without
    /// granting until the backup switch's queue drains (§4.5).
    pub fn begin_handback_suppression(&mut self, lock: LockId) {
        if let Some(entry) = self.directory.get(lock) {
            if let Residence::Switch { qid } = entry.residence {
                self.overflow[qid].suppressed = true;
            }
        }
    }

    /// The backup reports `lock` drained: stop suppressing and grant
    /// the head run that accumulated.
    fn on_handback(&mut self, lock: LockId, out: &mut ActionBuf) {
        self.stats.passes += 1;
        let Some(entry) = self.directory.get(lock) else {
            return;
        };
        let Residence::Switch { qid } = entry.residence else {
            return;
        };
        if !self.overflow[qid].suppressed {
            return;
        }
        self.overflow[qid].suppressed = false;
        let Engine::Fcfs(q) = &mut self.engine else {
            return;
        };
        self.grant_scratch.clear();
        let out_k = FcfsEngine::kickstart(q, &mut self.passes, qid, &mut self.grant_scratch);
        self.stats.passes += (out_k.passes as u64).saturating_sub(1);
        self.stats.grants_on_release += self.grant_scratch.len() as u64;
        for s in &self.grant_scratch {
            out.push(DpAction::SendGrant(Self::grant_of_slot(lock, s)));
        }
    }

    /// Whether grants for `lock` are currently suppressed (tests/CP).
    pub fn handback_suppressed(&self, lock: LockId) -> bool {
        match self.directory.get(lock).map(|e| e.residence) {
            Some(Residence::Switch { qid }) => self.overflow[qid].suppressed,
            _ => false,
        }
    }

    fn region_capacity(&self, qid: usize) -> u32 {
        match &self.engine {
            Engine::Fcfs(q) => {
                let v = q.cp_region(qid);
                v.capacity() - v.count
            }
            Engine::Priority(_) => 0,
        }
    }

    fn is_region_empty(&self, qid: usize) -> bool {
        match &self.engine {
            Engine::Fcfs(q) => q.cp_region(qid).count == 0,
            Engine::Priority(e) => e.cp_total_count(qid) == 0,
        }
    }

    /// True if lock `qid` is in overflow mode (tests/CP).
    pub fn overflow_active(&self, qid: usize) -> bool {
        self.overflow[qid].active
    }

    /// Take and reset the per-lock forward counts (one measurement
    /// epoch of server-resident lock rates). Output is sorted by lock
    /// id — the control-plane sweep must never depend on table order.
    pub fn cp_take_forward_counts(&mut self) -> Vec<(LockId, u64)> {
        let mut v: Vec<(LockId, u64)> = Vec::new();
        for (idx, count) in self.forward_counts.iter_mut().enumerate() {
            if *count != 0 {
                v.push((self.directory.lock_of_index(idx), std::mem::take(count)));
            }
        }
        v.sort_by_key(|&(l, _)| l);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlock_proto::{ClientAddr, LockMode, Priority, TxnId};

    fn req(lock: u32, mode: LockMode, txn: u64) -> LockRequest {
        LockRequest {
            lock: LockId(lock),
            mode,
            txn: TxnId(txn),
            client: ClientAddr(txn as u32),
            tenant: TenantId(0),
            priority: Priority(0),
            issued_at_ns: 0,
        }
    }

    fn rel(lock: u32, mode: LockMode, txn: u64) -> ReleaseRequest {
        ReleaseRequest {
            lock: LockId(lock),
            txn: TxnId(txn),
            mode,
            client: ClientAddr(txn as u32),
            priority: Priority(0),
        }
    }

    fn dp_with_lock(cap: u32) -> DataPlane {
        let mut dp = DataPlane::new_fcfs(&SharedQueueLayout::small(2, 16, 4));
        match dp.engine_mut() {
            Engine::Fcfs(q) => q.cp_set_region(0, 0, cap),
            _ => unreachable!(),
        }
        dp.directory_mut().set_switch_resident(LockId(1), 0, 0);
        dp.directory_mut().set_server_resident(LockId(2), 1);
        dp
    }

    #[test]
    fn switch_lock_grants_immediately() {
        let mut dp = dp_with_lock(8);
        let acts = dp.process_collect(NetLockMsg::Acquire(req(1, LockMode::Exclusive, 10)), 0);
        assert_eq!(acts.len(), 1);
        assert!(matches!(acts[0], DpAction::SendGrant(g) if g.txn == TxnId(10)));
        assert_eq!(dp.stats().grants_immediate, 1);
    }

    #[test]
    fn server_lock_forwards() {
        let mut dp = dp_with_lock(8);
        let acts = dp.process_collect(NetLockMsg::Acquire(req(2, LockMode::Shared, 11)), 0);
        assert_eq!(
            acts,
            vec![DpAction::ForwardAcquire {
                server: 1,
                req: req(2, LockMode::Shared, 11),
                buffer_only: false,
            }]
        );
        let acts = dp.process_collect(NetLockMsg::Release(rel(2, LockMode::Shared, 11)), 0);
        assert!(matches!(
            acts[0],
            DpAction::ForwardRelease { server: 1, .. }
        ));
    }

    #[test]
    fn unknown_lock_dropped() {
        let mut dp = dp_with_lock(8);
        let acts = dp.process_collect(NetLockMsg::Acquire(req(99, LockMode::Shared, 1)), 0);
        assert_eq!(
            acts,
            vec![DpAction::Drop {
                reason: DropReason::UnknownLock
            }]
        );
    }

    #[test]
    fn release_hands_off_to_waiter() {
        let mut dp = dp_with_lock(8);
        dp.process_collect(NetLockMsg::Acquire(req(1, LockMode::Exclusive, 1)), 0);
        let acts = dp.process_collect(NetLockMsg::Acquire(req(1, LockMode::Exclusive, 2)), 0);
        assert!(acts.is_empty(), "second X is queued silently");
        let acts = dp.process_collect(NetLockMsg::Release(rel(1, LockMode::Exclusive, 1)), 0);
        assert!(matches!(acts[0], DpAction::SendGrant(g) if g.txn == TxnId(2)));
        assert_eq!(dp.stats().grants_on_release, 1);
    }

    #[test]
    fn overflow_enters_buffer_only_mode_and_recovers() {
        let mut dp = dp_with_lock(2);
        // Fill q1.
        dp.process_collect(NetLockMsg::Acquire(req(1, LockMode::Exclusive, 1)), 0);
        dp.process_collect(NetLockMsg::Acquire(req(1, LockMode::Exclusive, 2)), 0);
        // Overflow → buffer-only forward.
        let acts = dp.process_collect(NetLockMsg::Acquire(req(1, LockMode::Exclusive, 3)), 0);
        assert_eq!(
            acts,
            vec![DpAction::ForwardAcquire {
                server: 0,
                req: req(1, LockMode::Exclusive, 3),
                buffer_only: true,
            }]
        );
        assert!(dp.overflow_active(0));
        // While in overflow mode, even though q1 may have space, new
        // requests still go to q2 to preserve order.
        let acts = dp.process_collect(NetLockMsg::Acquire(req(1, LockMode::Exclusive, 4)), 0);
        assert!(matches!(
            acts[0],
            DpAction::ForwardAcquire {
                buffer_only: true,
                ..
            }
        ));

        // Drain q1: txn1 release grants txn2; txn2 release empties q1 →
        // QueueSpace to the server.
        let acts = dp.process_collect(NetLockMsg::Release(rel(1, LockMode::Exclusive, 1)), 0);
        assert!(matches!(acts[0], DpAction::SendGrant(g) if g.txn == TxnId(2)));
        let acts = dp.process_collect(NetLockMsg::Release(rel(1, LockMode::Exclusive, 2)), 0);
        assert!(matches!(
            acts[0],
            DpAction::SendQueueSpace {
                lock: LockId(1),
                space: 2,
                ..
            }
        ));

        // Server pushes both buffered requests; first is granted.
        let acts = dp.process_collect(
            NetLockMsg::Push {
                lock: LockId(1),
                reqs: Box::new([
                    req(1, LockMode::Exclusive, 3),
                    req(1, LockMode::Exclusive, 4),
                ]),
            },
            0,
        );
        assert!(matches!(acts[0], DpAction::SendGrant(g) if g.txn == TxnId(3)));
        // forwarded == pushed → normal mode restored.
        assert!(!dp.overflow_active(0));
    }

    #[test]
    fn overflow_mode_persists_until_counters_match() {
        let mut dp = dp_with_lock(1);
        dp.process_collect(NetLockMsg::Acquire(req(1, LockMode::Exclusive, 1)), 0);
        // Two overflows.
        dp.process_collect(NetLockMsg::Acquire(req(1, LockMode::Exclusive, 2)), 0);
        dp.process_collect(NetLockMsg::Acquire(req(1, LockMode::Exclusive, 3)), 0);
        // Drain; QueueSpace(space=1).
        let acts = dp.process_collect(NetLockMsg::Release(rel(1, LockMode::Exclusive, 1)), 0);
        assert!(matches!(acts[0], DpAction::SendQueueSpace { space: 1, .. }));
        // Server pushes one of two.
        let acts = dp.process_collect(
            NetLockMsg::Push {
                lock: LockId(1),
                reqs: vec![req(1, LockMode::Exclusive, 2)].into(),
            },
            0,
        );
        assert!(matches!(acts[0], DpAction::SendGrant(g) if g.txn == TxnId(2)));
        assert!(dp.overflow_active(0), "one request still buffered");
        // Drain again; push the last one.
        let acts = dp.process_collect(NetLockMsg::Release(rel(1, LockMode::Exclusive, 2)), 0);
        assert!(matches!(acts[0], DpAction::SendQueueSpace { space: 1, .. }));
        let acts = dp.process_collect(
            NetLockMsg::Push {
                lock: LockId(1),
                reqs: vec![req(1, LockMode::Exclusive, 3)].into(),
            },
            0,
        );
        assert!(matches!(acts[0], DpAction::SendGrant(g) if g.txn == TxnId(3)));
        assert!(!dp.overflow_active(0));
    }

    #[test]
    fn empty_push_retriggers_queue_space() {
        let mut dp = dp_with_lock(1);
        dp.process_collect(NetLockMsg::Acquire(req(1, LockMode::Exclusive, 1)), 0);
        dp.process_collect(NetLockMsg::Acquire(req(1, LockMode::Exclusive, 2)), 0);
        dp.process_collect(NetLockMsg::Release(rel(1, LockMode::Exclusive, 1)), 0);
        // Server's q2 momentarily empty (request still in flight): empty push.
        let acts = dp.process_collect(
            NetLockMsg::Push {
                lock: LockId(1),
                reqs: Box::new([]),
            },
            0,
        );
        // Still in overflow mode and q1 empty → ask again.
        assert!(dp.overflow_active(0));
        assert!(matches!(acts[0], DpAction::SendQueueSpace { .. }));
    }

    #[test]
    fn quota_meter_drops_over_rate() {
        let mut dp = dp_with_lock(8);
        dp.set_tenant_meter(TenantId(0), 1_000, 1, 0);
        let acts = dp.process_collect(NetLockMsg::Acquire(req(1, LockMode::Shared, 1)), 0);
        assert!(matches!(acts[0], DpAction::SendGrant(_)));
        let acts = dp.process_collect(NetLockMsg::Acquire(req(1, LockMode::Shared, 2)), 0);
        assert_eq!(
            acts,
            vec![DpAction::Drop {
                reason: DropReason::OverQuota
            }]
        );
        assert_eq!(dp.stats().quota_drops, 1);
        // A millisecond later one token refilled.
        let acts = dp.process_collect(NetLockMsg::Acquire(req(1, LockMode::Shared, 3)), 1_000_000);
        assert!(matches!(acts[0], DpAction::SendGrant(_)));
    }

    #[test]
    fn reset_wipes_everything() {
        let mut dp = dp_with_lock(8);
        dp.process_collect(NetLockMsg::Acquire(req(1, LockMode::Exclusive, 1)), 0);
        dp.reset();
        assert_eq!(dp.stats().grants_immediate, 0);
        assert!(dp.directory().is_empty());
        let acts = dp.process_collect(NetLockMsg::Acquire(req(1, LockMode::Exclusive, 2)), 0);
        assert_eq!(
            acts,
            vec![DpAction::Drop {
                reason: DropReason::UnknownLock
            }]
        );
    }

    #[test]
    fn priority_dataplane_routes_by_priority() {
        let mut dp = DataPlane::new_priority(&PriorityLayout::new(2, 8, 2));
        dp.directory_mut().set_switch_resident(LockId(1), 0, 0);
        let mut r1 = req(1, LockMode::Exclusive, 1);
        r1.priority = Priority(1);
        let mut r2 = req(1, LockMode::Exclusive, 2);
        r2.priority = Priority(1);
        let mut r3 = req(1, LockMode::Exclusive, 3);
        r3.priority = Priority(0);
        dp.process_collect(NetLockMsg::Acquire(r1), 0);
        dp.process_collect(NetLockMsg::Acquire(r2), 0);
        dp.process_collect(NetLockMsg::Acquire(r3), 0);
        // Release the priority-1 holder; the priority-0 waiter wins.
        let mut release = rel(1, LockMode::Exclusive, 1);
        release.priority = Priority(1);
        let acts = dp.process_collect(NetLockMsg::Release(release), 0);
        assert!(matches!(acts[0], DpAction::SendGrant(g) if g.txn == TxnId(3)));
    }

    /// The control-plane sweep consumes forward counts in sorted lock
    /// order — pinned here so the output can never depend on the order
    /// locks were first seen (or, historically, on hash iteration).
    #[test]
    fn forward_counts_drain_sorted_and_reset() {
        let mut dp = DataPlane::new_fcfs(&SharedQueueLayout::small(2, 16, 4));
        for lock in [9u32, 3, 7] {
            dp.directory_mut().set_server_resident(LockId(lock), 0);
        }
        // Touch locks in decidedly unsorted order, with distinct counts.
        for (lock, hits) in [(9u32, 3u64), (3, 1), (7, 2)] {
            for i in 0..hits {
                dp.process_collect(NetLockMsg::Acquire(req(lock, LockMode::Shared, 100 + i)), 0);
            }
        }
        assert_eq!(
            dp.cp_take_forward_counts(),
            vec![(LockId(3), 1), (LockId(7), 2), (LockId(9), 3)]
        );
        // The take resets every counter: a second epoch starts empty.
        assert!(dp.cp_take_forward_counts().is_empty());
        // New traffic after the reset is a fresh epoch, still sorted.
        dp.process_collect(NetLockMsg::Acquire(req(7, LockMode::Shared, 200)), 0);
        assert_eq!(dp.cp_take_forward_counts(), vec![(LockId(7), 1)]);
    }
}
