//! Register arrays: the switch's stateful on-chip memory.
//!
//! Programmable switches expose per-stage SRAM as register arrays. The
//! data plane is subject to two hard constraints that shape the entire
//! NetLock design (§4.2 of the paper):
//!
//! 1. **One access per pass.** While processing one packet (one pipeline
//!    pass), an action can perform at most one read-modify-write on a
//!    given register array. Needing a second access requires *resubmitting*
//!    the packet for another pass.
//! 2. **Stage ordering.** Arrays live in pipeline stages; a pass visits
//!    stages in order, so an access to stage `j` cannot follow an access to
//!    stage `k > j` within the same pass.
//!
//! [`RegisterArray::access`] enforces both at runtime: a NetLock data
//! plane that violates them (and therefore could not compile to Tofino)
//! panics in simulation. The switch control plane accesses registers over
//! PCIe without these constraints ([`RegisterArray::cp_read`] /
//! [`RegisterArray::cp_write`]).

/// Identifier of one pipeline pass (one packet traversal).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PassId(pub u64);

/// Tracks the constraint state of the current pipeline pass.
#[derive(Debug)]
pub struct Pass {
    id: PassId,
    /// Highest stage accessed so far in this pass.
    stage_cursor: usize,
    /// How many resubmits led to this pass (0 for the original packet).
    resubmit_depth: u32,
}

impl Pass {
    /// Begin a pass. `resubmit_depth` is 0 for a fresh packet.
    pub fn new(id: PassId, resubmit_depth: u32) -> Pass {
        Pass {
            id,
            stage_cursor: 0,
            resubmit_depth,
        }
    }

    /// The pass id.
    pub fn id(&self) -> PassId {
        self.id
    }

    /// Number of resubmits before this pass.
    pub fn resubmit_depth(&self) -> u32 {
        self.resubmit_depth
    }
}

/// A fixed-size array of registers in one pipeline stage.
///
/// `T` stands in for the (possibly field-parallel) register cells of one
/// logical array; a `T` wider than a machine word models multiple
/// same-indexed physical arrays that are always accessed together, which
/// is the *stricter* reading of the hardware constraint.
#[derive(Debug)]
pub struct RegisterArray<T> {
    name: &'static str,
    stage: usize,
    data: Vec<T>,
    last_access: Option<PassId>,
}

impl<T: Copy> RegisterArray<T> {
    /// Allocate an array of `size` cells in `stage`, all set to `init`.
    ///
    /// Size is fixed afterwards — register memory is pre-allocated when
    /// the data plane program is compiled and loaded (§4.2).
    pub fn new(name: &'static str, stage: usize, size: usize, init: T) -> RegisterArray<T> {
        RegisterArray {
            name,
            stage,
            data: vec![init; size],
            last_access: None,
        }
    }

    /// The stage this array lives in.
    pub fn stage(&self) -> usize {
        self.stage
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the array has no cells.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Data-plane read-modify-write of cell `idx` during `pass`.
    ///
    /// Returns whatever the closure returns (typically the pre-modify
    /// value, which is what Tofino's stateful ALU can export).
    ///
    /// # Panics
    /// - if this array was already accessed during `pass` (needs resubmit)
    /// - if `pass` already accessed a later stage (cannot go backwards)
    /// - if `idx` is out of bounds
    pub fn access<R>(&mut self, pass: &mut Pass, idx: usize, f: impl FnOnce(&mut T) -> R) -> R {
        assert!(
            self.last_access != Some(pass.id),
            "register array '{}' accessed twice in pass {:?}: the P4 data \
             plane would need a resubmit here",
            self.name,
            pass.id
        );
        assert!(
            self.stage >= pass.stage_cursor,
            "register array '{}' (stage {}) accessed after stage {} in the \
             same pass: a pipeline pass cannot revisit earlier stages",
            self.name,
            self.stage,
            pass.stage_cursor
        );
        self.last_access = Some(pass.id);
        pass.stage_cursor = self.stage;
        let cell = self
            .data
            .get_mut(idx)
            .unwrap_or_else(|| panic!("register array index out of bounds: {idx}"));
        f(cell)
    }

    /// Control-plane read (PCIe path; not pass-constrained).
    pub fn cp_read(&self, idx: usize) -> T {
        self.data[idx]
    }

    /// Control-plane write (PCIe path; not pass-constrained).
    pub fn cp_write(&mut self, idx: usize, value: T) {
        self.data[idx] = value;
    }

    /// Control-plane bulk reset (e.g. after a switch reboot, the register
    /// file comes back zeroed/initialized).
    pub fn cp_fill(&mut self, value: T) {
        self.data.iter_mut().for_each(|c| *c = value);
        self.last_access = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmw_returns_closure_value() {
        let mut arr = RegisterArray::new("a", 0, 4, 0u64);
        let mut pass = Pass::new(PassId(1), 0);
        let old = arr.access(&mut pass, 2, |c| {
            let old = *c;
            *c += 5;
            old
        });
        assert_eq!(old, 0);
        assert_eq!(arr.cp_read(2), 5);
    }

    #[test]
    #[should_panic(expected = "accessed twice in pass")]
    fn double_access_in_one_pass_panics() {
        let mut arr = RegisterArray::new("a", 0, 4, 0u64);
        let mut pass = Pass::new(PassId(1), 0);
        arr.access(&mut pass, 0, |_| ());
        arr.access(&mut pass, 1, |_| ());
    }

    #[test]
    fn new_pass_resets_access_budget() {
        let mut arr = RegisterArray::new("a", 0, 4, 0u64);
        let mut p1 = Pass::new(PassId(1), 0);
        arr.access(&mut p1, 0, |c| *c += 1);
        let mut p2 = Pass::new(PassId(2), 1);
        arr.access(&mut p2, 0, |c| *c += 1);
        assert_eq!(arr.cp_read(0), 2);
        assert_eq!(p2.resubmit_depth(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot revisit earlier stages")]
    fn backwards_stage_access_panics() {
        let mut early = RegisterArray::new("early", 1, 4, 0u64);
        let mut late = RegisterArray::new("late", 3, 4, 0u64);
        let mut pass = Pass::new(PassId(1), 0);
        late.access(&mut pass, 0, |_| ());
        early.access(&mut pass, 0, |_| ());
    }

    #[test]
    fn same_stage_different_arrays_ok() {
        let mut a = RegisterArray::new("a", 2, 4, 0u64);
        let mut b = RegisterArray::new("b", 2, 4, 0u64);
        let mut pass = Pass::new(PassId(1), 0);
        a.access(&mut pass, 0, |_| ());
        b.access(&mut pass, 0, |_| ());
    }

    #[test]
    fn ascending_stage_access_ok() {
        let mut a = RegisterArray::new("a", 0, 4, 0u64);
        let mut b = RegisterArray::new("b", 5, 4, 0u64);
        let mut pass = Pass::new(PassId(1), 0);
        a.access(&mut pass, 0, |_| ());
        b.access(&mut pass, 0, |_| ());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_panics() {
        let mut arr = RegisterArray::new("a", 0, 4, 0u64);
        let mut pass = Pass::new(PassId(1), 0);
        arr.access(&mut pass, 4, |_| ());
    }

    #[test]
    fn cp_access_is_unconstrained() {
        let mut arr = RegisterArray::new("a", 0, 4, 7u64);
        // Many CP ops with no pass at all.
        for i in 0..4 {
            assert_eq!(arr.cp_read(i), 7);
            arr.cp_write(i, i as u64);
        }
        arr.cp_fill(9);
        assert!((0..4).all(|i| arr.cp_read(i) == 9));
        assert_eq!(arr.len(), 4);
        assert!(!arr.is_empty());
    }
}
