//! Register arrays: the switch's stateful on-chip memory.
//!
//! Programmable switches expose per-stage SRAM as register arrays. The
//! data plane is subject to two hard constraints that shape the entire
//! NetLock design (§4.2 of the paper):
//!
//! 1. **One access per pass.** While processing one packet (one pipeline
//!    pass), an action can perform at most one read-modify-write on a
//!    given register array. Needing a second access requires *resubmitting*
//!    the packet for another pass.
//! 2. **Stage ordering.** Arrays live in pipeline stages; a pass visits
//!    stages in order, so an access to stage `j` cannot follow an access to
//!    stage `k > j` within the same pass.
//!
//! [`RegisterArray::access`] enforces both at runtime: a NetLock data
//! plane that violates them (and therefore could not compile to Tofino)
//! panics in simulation. The switch control plane accesses registers over
//! PCIe without these constraints ([`RegisterArray::cp_read`] /
//! [`RegisterArray::cp_write`]).

use std::sync::atomic::{AtomicU32, Ordering};

use crate::analysis::trace::{AccessRecord, TraceSink};

/// Identifier of one pipeline pass (one packet traversal).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PassId(pub u64);

/// Unique identity of one register-array *instance*.
///
/// Array names are display labels and repeat (every slot array is named
/// "slots"); the analysis layer needs to tell instances apart, so each
/// allocation draws a fresh id from a process-wide counter.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ArrayId(pub u32);

static NEXT_ARRAY_ID: AtomicU32 = AtomicU32::new(0);

/// Tracks the constraint state of the current pipeline pass.
#[derive(Debug)]
pub struct Pass {
    id: PassId,
    /// Highest stage accessed so far in this pass.
    stage_cursor: usize,
    /// How many resubmits led to this pass (0 for the original packet).
    resubmit_depth: u32,
    /// Cached `sink.is_some()`, hoisted out of the access hot path so
    /// the untraced case costs exactly one well-predicted branch; the
    /// recording body lives out of line behind it (`#[cold]`).
    tracing: bool,
    /// Optional recorder every register access is reported to.
    sink: Option<TraceSink>,
}

impl Pass {
    /// Begin a pass. `resubmit_depth` is 0 for a fresh packet.
    pub fn new(id: PassId, resubmit_depth: u32) -> Pass {
        Pass {
            id,
            stage_cursor: 0,
            resubmit_depth,
            tracing: false,
            sink: None,
        }
    }

    /// The pass id.
    pub fn id(&self) -> PassId {
        self.id
    }

    /// Number of resubmits before this pass.
    pub fn resubmit_depth(&self) -> u32 {
        self.resubmit_depth
    }

    /// Attach a trace sink; every subsequent register access in this
    /// pass is recorded into it.
    pub fn set_sink(&mut self, sink: TraceSink) {
        self.sink = Some(sink);
        self.tracing = true;
    }

    /// Out-of-line recording path: only reached when a sink is
    /// attached, so the untraced hot path never constructs an
    /// [`AccessRecord`] or touches the `RefCell`.
    #[cold]
    #[inline(never)]
    fn record(&self, array: ArrayId, name: &'static str, stage: usize, index: usize) {
        if let Some(sink) = &self.sink {
            sink.lock().unwrap().record(AccessRecord {
                array,
                name,
                stage,
                index,
                pass: self.id,
                resubmit_depth: self.resubmit_depth,
            });
        }
    }
}

/// A fixed-size array of registers in one pipeline stage.
///
/// `T` stands in for the (possibly field-parallel) register cells of one
/// logical array; a `T` wider than a machine word models multiple
/// same-indexed physical arrays that are always accessed together, which
/// is the *stricter* reading of the hardware constraint.
#[derive(Debug)]
pub struct RegisterArray<T> {
    id: ArrayId,
    name: &'static str,
    stage: usize,
    data: Vec<T>,
    last_access: Option<PassId>,
}

impl<T: Copy> RegisterArray<T> {
    /// Allocate an array of `size` cells in `stage`, all set to `init`.
    ///
    /// Size is fixed afterwards — register memory is pre-allocated when
    /// the data plane program is compiled and loaded (§4.2).
    pub fn new(name: &'static str, stage: usize, size: usize, init: T) -> RegisterArray<T> {
        RegisterArray {
            id: ArrayId(NEXT_ARRAY_ID.fetch_add(1, Ordering::Relaxed)),
            name,
            stage,
            data: vec![init; size],
            last_access: None,
        }
    }

    /// This instance's unique identity.
    pub fn id(&self) -> ArrayId {
        self.id
    }

    /// The array's display name (not unique).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The stage this array lives in.
    pub fn stage(&self) -> usize {
        self.stage
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the array has no cells.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Data-plane read-modify-write of cell `idx` during `pass`.
    ///
    /// Returns whatever the closure returns (typically the pre-modify
    /// value, which is what Tofino's stateful ALU can export).
    ///
    /// # Panics
    /// - if this array was already accessed during `pass` (needs resubmit)
    /// - if `pass` already accessed a later stage (cannot go backwards)
    /// - if `idx` is out of bounds
    #[inline]
    pub fn access<R>(&mut self, pass: &mut Pass, idx: usize, f: impl FnOnce(&mut T) -> R) -> R {
        // The violation panics are out-of-line (`#[cold]`) so the
        // discipline checks compile to two predicted branches on the
        // per-packet hot path.
        if self.last_access == Some(pass.id) {
            self.double_access_violation(pass);
        }
        if self.stage < pass.stage_cursor {
            self.stage_order_violation(pass);
        }
        self.last_access = Some(pass.id);
        pass.stage_cursor = self.stage;
        if pass.tracing {
            pass.record(self.id, self.name, self.stage, idx);
        }
        let cell = self
            .data
            .get_mut(idx)
            .unwrap_or_else(|| panic!("register array index out of bounds: {idx}"));
        f(cell)
    }

    #[cold]
    #[inline(never)]
    fn double_access_violation(&self, pass: &Pass) -> ! {
        panic!(
            "register array '{}' accessed twice in pass {:?}: the P4 data \
             plane would need a resubmit here",
            self.name, pass.id
        );
    }

    #[cold]
    #[inline(never)]
    fn stage_order_violation(&self, pass: &Pass) -> ! {
        panic!(
            "register array '{}' (stage {}) accessed after stage {} in the \
             same pass: a pipeline pass cannot revisit earlier stages",
            self.name, self.stage, pass.stage_cursor
        );
    }

    /// Control-plane read (PCIe path; not pass-constrained).
    pub fn cp_read(&self, idx: usize) -> T {
        self.data[idx]
    }

    /// Control-plane write (PCIe path; not pass-constrained).
    ///
    /// Clears the pass-access bookkeeping, like [`RegisterArray::cp_fill`]:
    /// after a control-plane restore (reboot recovery, region moves), a
    /// pass allocator that restarted from id 1 must not be blocked by a
    /// stale `last_access` from the previous incarnation.
    pub fn cp_write(&mut self, idx: usize, value: T) {
        self.data[idx] = value;
        self.last_access = None;
    }

    /// Control-plane bulk reset (e.g. after a switch reboot, the register
    /// file comes back zeroed/initialized).
    pub fn cp_fill(&mut self, value: T) {
        self.data.iter_mut().for_each(|c| *c = value);
        self.last_access = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmw_returns_closure_value() {
        let mut arr = RegisterArray::new("a", 0, 4, 0u64);
        let mut pass = Pass::new(PassId(1), 0);
        let old = arr.access(&mut pass, 2, |c| {
            let old = *c;
            *c += 5;
            old
        });
        assert_eq!(old, 0);
        assert_eq!(arr.cp_read(2), 5);
    }

    #[test]
    #[should_panic(expected = "accessed twice in pass")]
    fn double_access_in_one_pass_panics() {
        let mut arr = RegisterArray::new("a", 0, 4, 0u64);
        let mut pass = Pass::new(PassId(1), 0);
        arr.access(&mut pass, 0, |_| ());
        arr.access(&mut pass, 1, |_| ());
    }

    #[test]
    fn new_pass_resets_access_budget() {
        let mut arr = RegisterArray::new("a", 0, 4, 0u64);
        let mut p1 = Pass::new(PassId(1), 0);
        arr.access(&mut p1, 0, |c| *c += 1);
        let mut p2 = Pass::new(PassId(2), 1);
        arr.access(&mut p2, 0, |c| *c += 1);
        assert_eq!(arr.cp_read(0), 2);
        assert_eq!(p2.resubmit_depth(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot revisit earlier stages")]
    fn backwards_stage_access_panics() {
        let mut early = RegisterArray::new("early", 1, 4, 0u64);
        let mut late = RegisterArray::new("late", 3, 4, 0u64);
        let mut pass = Pass::new(PassId(1), 0);
        late.access(&mut pass, 0, |_| ());
        early.access(&mut pass, 0, |_| ());
    }

    #[test]
    fn same_stage_different_arrays_ok() {
        let mut a = RegisterArray::new("a", 2, 4, 0u64);
        let mut b = RegisterArray::new("b", 2, 4, 0u64);
        let mut pass = Pass::new(PassId(1), 0);
        a.access(&mut pass, 0, |_| ());
        b.access(&mut pass, 0, |_| ());
    }

    #[test]
    fn ascending_stage_access_ok() {
        let mut a = RegisterArray::new("a", 0, 4, 0u64);
        let mut b = RegisterArray::new("b", 5, 4, 0u64);
        let mut pass = Pass::new(PassId(1), 0);
        a.access(&mut pass, 0, |_| ());
        b.access(&mut pass, 0, |_| ());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_panics() {
        let mut arr = RegisterArray::new("a", 0, 4, 0u64);
        let mut pass = Pass::new(PassId(1), 0);
        arr.access(&mut pass, 4, |_| ());
    }

    #[test]
    fn cp_write_clears_access_tracking() {
        let mut arr = RegisterArray::new("a", 0, 4, 0u64);
        let mut pass = Pass::new(PassId(1), 0);
        arr.access(&mut pass, 0, |c| *c += 1);
        arr.cp_write(0, 9);
        // A restarted pass allocator reuses id 1; the CP write must have
        // cleared the stale bookkeeping, exactly like cp_fill does.
        let mut pass = Pass::new(PassId(1), 0);
        arr.access(&mut pass, 0, |c| *c += 1);
        assert_eq!(arr.cp_read(0), 10);
    }

    #[test]
    fn access_records_into_attached_sink() {
        let sink = crate::analysis::trace::new_sink();
        let mut arr = RegisterArray::new("a", 2, 4, 0u64);
        let mut pass = Pass::new(PassId(7), 1);
        pass.set_sink(sink.clone());
        arr.access(&mut pass, 3, |c| *c += 1);
        // CP operations are PCIe traffic: never traced.
        arr.cp_write(0, 5);
        arr.cp_fill(0);
        let records = sink.lock().unwrap().take();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].array, arr.id());
        assert_eq!(records[0].name, "a");
        assert_eq!(records[0].stage, 2);
        assert_eq!(records[0].index, 3);
        assert_eq!(records[0].pass, PassId(7));
        assert_eq!(records[0].resubmit_depth, 1);
    }

    #[test]
    fn array_ids_are_unique_per_instance() {
        let a = RegisterArray::new("same", 0, 1, 0u64);
        let b = RegisterArray::new("same", 0, 1, 0u64);
        assert_ne!(a.id(), b.id(), "same name and stage, distinct identity");
    }

    #[test]
    fn cp_access_is_unconstrained() {
        let mut arr = RegisterArray::new("a", 0, 4, 7u64);
        // Many CP ops with no pass at all.
        for i in 0..4 {
            assert_eq!(arr.cp_read(i), 7);
            arr.cp_write(i, i as u64);
        }
        arr.cp_fill(9);
        assert!((0..4).all(|i| arr.cp_read(i) == 9));
        assert_eq!(arr.len(), 4);
        assert!(!arr.is_empty());
    }
}
