//! Fixed-capacity, caller-owned buffer for data-plane actions.
//!
//! [`crate::DataPlane::process`] writes the actions one packet provokes
//! into an [`ActionBuf`] the caller owns and reuses, so the per-packet
//! hot path performs zero heap allocation — the software analogue of a
//! Tofino pipeline, whose per-packet output (mirrors, resubmits, the
//! forwarded packet itself) is bounded by the compiled program, not by
//! a dynamically sized container.
//!
//! The capacity is a feasibility bound, not a soft limit. The widest
//! single-packet burst Algorithm 2 can produce is an exclusive→shared
//! release cascade: one grant per queued shared request, bounded by the
//! largest per-lock queue region the control plane ever allocates, plus
//! one push-protocol notification. Every workload in this repository
//! keeps per-lock contention at or below 600 outstanding requests
//! (`netlock-core`'s micro-benchmark tail test), so [`ACTION_BUF_CAP`]
//! of 1024 leaves headroom while still catching runaway fan-out:
//! overflowing the buffer panics exactly like a register-discipline
//! violation in [`crate::register`], because a model that emits more
//! packets per pass than the ASIC could is no longer feasible.

use std::ops::Deref;

use crate::dataplane::{DpAction, DropReason};

/// Upper bound on actions a single processed message may produce.
pub const ACTION_BUF_CAP: usize = 1024;

/// A reusable, fixed-capacity action buffer (see module docs).
///
/// Dereferences to `[DpAction]` for iteration and indexing. `push`
/// panics on overflow — an infeasible actions-per-packet burst.
pub struct ActionBuf {
    len: usize,
    slots: Box<[DpAction; ACTION_BUF_CAP]>,
}

impl ActionBuf {
    /// An empty buffer. Performs the one heap allocation of the
    /// buffer's lifetime; construct once per node, not per packet.
    pub fn new() -> ActionBuf {
        // The fill value is arbitrary — `len` delimits the live prefix.
        let fill = DpAction::Drop {
            reason: DropReason::UnknownLock,
        };
        ActionBuf {
            len: 0,
            slots: Box::new([fill; ACTION_BUF_CAP]),
        }
    }

    /// Discard all actions (the buffer's capacity is retained).
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Append one action.
    ///
    /// # Panics
    /// If the buffer is full: a single packet provoking more than
    /// [`ACTION_BUF_CAP`] actions means the model diverged from a
    /// feasible switch program (see module docs).
    #[inline]
    pub fn push(&mut self, action: DpAction) {
        if self.len >= ACTION_BUF_CAP {
            Self::overflow();
        }
        self.slots[self.len] = action;
        self.len += 1;
    }

    #[cold]
    #[inline(never)]
    fn overflow() -> ! {
        panic!(
            "infeasible action burst: one packet provoked more than {ACTION_BUF_CAP} \
             data-plane actions; Algorithm 2's per-packet fan-out is bounded by the \
             largest queue region, so this exceeds the Tofino feasibility envelope"
        );
    }

    /// The recorded actions.
    pub fn as_slice(&self) -> &[DpAction] {
        &self.slots[..self.len]
    }
}

impl Default for ActionBuf {
    fn default() -> Self {
        ActionBuf::new()
    }
}

impl PartialEq<Vec<DpAction>> for ActionBuf {
    fn eq(&self, other: &Vec<DpAction>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Deref for ActionBuf {
    type Target = [DpAction];
    fn deref(&self) -> &[DpAction] {
        self.as_slice()
    }
}

impl std::fmt::Debug for ActionBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice().iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_clear_and_deref() {
        let mut buf = ActionBuf::new();
        assert!(buf.is_empty());
        buf.push(DpAction::Drop {
            reason: DropReason::OverQuota,
        });
        buf.push(DpAction::Drop {
            reason: DropReason::UnknownLock,
        });
        assert_eq!(buf.len(), 2);
        assert!(matches!(
            buf[1],
            DpAction::Drop {
                reason: DropReason::UnknownLock
            }
        ));
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.as_slice(), &[]);
    }

    #[test]
    #[should_panic(expected = "infeasible action burst")]
    fn overflow_panics_like_a_feasibility_violation() {
        let mut buf = ActionBuf::new();
        for _ in 0..=ACTION_BUF_CAP {
            buf.push(DpAction::Drop {
                reason: DropReason::OverQuota,
            });
        }
    }
}
