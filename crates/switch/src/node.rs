//! The lock-switch simulation node.
//!
//! Wraps the [`DataPlane`] state machine as a `netlock-sim` node: packets
//! in, packets out, with the switch's traversal latency and per-resubmit
//! cost charged on every emission. Also hosts the control-plane loop
//! (lease sweeping, lock migration) that on hardware runs on the switch
//! CPU and talks to the ASIC over PCIe.

use std::collections::{HashMap, HashSet};

use netlock_proto::{GrantMsg, LockId, NetLockMsg, TxnId};
use netlock_sim::{Context, FastHashMap, Node, NodeId, Packet, SimDuration};

use crate::action_buf::ActionBuf;
use crate::control::{self, MigrationOp};
use crate::dataplane::{DataPlane, DpAction};

/// Timer token for the control-plane tick.
const TIMER_CONTROL_TICK: u64 = 1;
/// Timer token for the reallocation epoch.
const TIMER_REALLOC: u64 = 2;

/// Dynamic memory-reallocation policy (§4.3: "updates the memory
/// allocation based on Algorithm 3 when the workload changes").
#[derive(Clone, Debug)]
pub struct AutoRealloc {
    /// Measurement epoch between reallocations.
    pub epoch: SimDuration,
    /// Switch memory budget given to the allocator (queue slots).
    pub switch_slots: u32,
    /// Maximum queue regions (the FCFS layout's region-table size).
    pub max_regions: usize,
    /// Contention estimate `c_i` assumed for a lock measured only at
    /// the servers (the switch sees its rate, not its queue depth).
    pub server_contention: u32,
}

/// Switch node configuration.
#[derive(Clone, Debug)]
pub struct SwitchConfig {
    /// Ingress-to-egress traversal latency (the paper: well under 1 µs).
    pub traversal: SimDuration,
    /// Added latency per extra pipeline pass (resubmit).
    pub pass_latency: SimDuration,
    /// Lease duration; expired holders are force-released by the control
    /// plane (§4.5). Zero disables lease sweeping.
    pub lease: SimDuration,
    /// Control-plane polling interval.
    pub control_tick: SimDuration,
    /// One-RTT transaction mode (§4.1): grants are forwarded to the
    /// database server to combine locking and data fetch.
    pub one_rtt: bool,
    /// This switch is acting as the backup for a restarted original:
    /// whenever one of its lock queues drains, it hands the lock back
    /// (CtrlHandback) to the given node (§4.5).
    pub backup_handback_to: Option<NodeId>,
    /// Periodic measure-and-reallocate loop (None = static allocation,
    /// as the figure harnesses use).
    pub auto_realloc: Option<AutoRealloc>,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            traversal: SimDuration::from_nanos(500),
            pass_latency: SimDuration::from_nanos(100),
            lease: SimDuration::from_millis(10),
            control_tick: SimDuration::from_millis(1),
            one_rtt: false,
            backup_handback_to: None,
            auto_realloc: None,
        }
    }
}

/// Node-level counters (message plane; the data plane keeps its own).
#[derive(Clone, Copy, Debug, Default)]
pub struct SwitchNodeStats {
    /// Grant notifications sent to clients.
    pub grants_sent: u64,
    /// Grants forwarded to database servers (one-RTT mode).
    pub grants_to_db: u64,
    /// Packets dropped by policy or unknown-lock.
    pub drops: u64,
    /// Force-releases issued by the lease sweeper.
    pub lease_expirations: u64,
    /// Migration operations completed.
    pub migrations_done: u64,
    /// Releases dropped by the grant/release conservation guard: the
    /// `(lock, txn)` had no outstanding grant (already released, already
    /// force-released by the lease sweeper, or a network duplicate), so
    /// processing it would blindly dequeue some other holder's entry.
    pub stale_releases_filtered: u64,
}

/// The ToR lock switch.
pub struct SwitchNode {
    dp: DataPlane,
    cfg: SwitchConfig,
    /// Lock server node ids, indexed by the directory's server index.
    servers: Vec<NodeId>,
    /// Database server node ids for one-RTT mode (may be empty).
    db_servers: Vec<NodeId>,
    /// Locks draining toward demotion.
    pending_demotes: HashSet<LockId>,
    /// Promotions waiting for demotions to free their regions.
    pending_promotes: Vec<MigrationOp>,
    /// Regions reserved for in-flight promotions; the directory flips
    /// only when the server's CtrlPromoteReady arrives (§4.3: the
    /// queue must drain before the move).
    promote_reservations: HashMap<LockId, (usize, u32, u32, usize)>,
    /// Release guard: outstanding grants per `(lock, txn)` for
    /// switch-resident locks. The data plane dequeues blindly on
    /// release (the paper's §4.2 queue is not content-addressable), so
    /// the control plane keeps this shadow ledger and drops releases
    /// that no outstanding grant authorizes — making releases
    /// idempotent under duplication, retries and lease expiry. Hit
    /// twice per request (grant and release) — keyed through the
    /// deterministic fast hasher, not SipHash.
    granted_outstanding: FastHashMap<(LockId, TxnId), u32>,
    /// Test hook: when set, the release guard admits every release
    /// (restores the unguarded blind-dequeue behaviour).
    release_guard_disabled: bool,
    /// Reusable per-packet action buffer: allocated once here, filled
    /// by `DataPlane::process`, drained by `emit`. Zero steady-state
    /// heap traffic on the packet path.
    actions: ActionBuf,
    stats: SwitchNodeStats,
}

impl SwitchNode {
    /// Build a switch around a programmed data plane.
    pub fn new(dp: DataPlane, cfg: SwitchConfig, servers: Vec<NodeId>) -> SwitchNode {
        SwitchNode {
            dp,
            cfg,
            servers,
            db_servers: Vec::new(),
            pending_demotes: HashSet::new(),
            pending_promotes: Vec::new(),
            promote_reservations: HashMap::new(),
            granted_outstanding: FastHashMap::default(),
            release_guard_disabled: false,
            actions: ActionBuf::new(),
            stats: SwitchNodeStats::default(),
        }
    }

    /// Disable the release guard (chaos-suite sabotage hook; proves the
    /// safety oracle detects the resulting double-dequeues).
    #[doc(hidden)]
    pub fn sabotage_disable_release_guard(&mut self) {
        self.release_guard_disabled = true;
    }

    /// Whether a release for `(lock, txn)` is authorized by an
    /// outstanding grant. Only consulted for switch-resident locks;
    /// server-resident releases are forwarded (the server's lock table
    /// matches holders by txn and is naturally idempotent).
    fn ledger_admit(
        ledger: &mut FastHashMap<(LockId, TxnId), u32>,
        lock: LockId,
        txn: TxnId,
    ) -> bool {
        match ledger.get_mut(&(lock, txn)) {
            Some(n) if *n > 0 => {
                *n -= 1;
                if *n == 0 {
                    ledger.remove(&(lock, txn));
                }
                true
            }
            _ => false,
        }
    }

    /// Enable one-RTT mode with the given database servers.
    pub fn with_db_servers(mut self, db_servers: Vec<NodeId>) -> SwitchNode {
        self.db_servers = db_servers;
        self
    }

    /// Put this switch into backup-handback mode: queue drains are
    /// reported to `original` so it can resume granting (§4.5). The
    /// restarted original must have had
    /// [`DataPlane::begin_handback_suppression`] applied to the locks
    /// the backup still owns.
    pub fn set_backup_handback(&mut self, original: Option<NodeId>) {
        self.cfg.backup_handback_to = original;
    }

    /// Data-plane handle (control plane / harness).
    pub fn dataplane(&self) -> &DataPlane {
        &self.dp
    }

    /// Mutable data-plane handle (control plane / harness).
    pub fn dataplane_mut(&mut self) -> &mut DataPlane {
        &mut self.dp
    }

    /// Node counters.
    pub fn stats(&self) -> SwitchNodeStats {
        self.stats
    }

    /// The configuration this switch runs with.
    pub fn config(&self) -> &SwitchConfig {
        &self.cfg
    }

    /// Timer token of the control-plane tick (lease sweeping, demote
    /// drains). The tick re-arms itself, so the chain breaks while the
    /// node is dead; after a revive the harness must restart it with
    /// `Simulator::inject_timer` using this token.
    pub const CONTROL_TIMER_TOKEN: u64 = TIMER_CONTROL_TICK;

    /// Model a reboot: all data-plane registers and tables are wiped
    /// (§6.5) and migration state is forgotten. The harness reprograms
    /// the directory afterwards, as the real control plane would.
    pub fn reboot(&mut self) {
        self.dp.reset();
        self.pending_demotes.clear();
        self.pending_promotes.clear();
        self.promote_reservations.clear();
        // The ledger dies with the registers: releases for pre-reboot
        // grants must not dequeue entries of the rebuilt queues.
        self.granted_outstanding.clear();
    }

    /// Start executing a migration plan (control-plane operation).
    pub fn start_migration(&mut self, ops: Vec<MigrationOp>, ctx: &mut Context<'_, NetLockMsg>) {
        for op in ops {
            match op {
                MigrationOp::Demote { lock } => {
                    // Track before attempting completion: an instantly
                    // drained queue completes inside the call, and the
                    // bookkeeping must see the removal.
                    self.pending_demotes.insert(lock);
                    if self.dp.begin_demote(lock) {
                        self.try_complete_demote(lock, ctx);
                    }
                }
                promote @ MigrationOp::Promote { .. } => {
                    self.pending_promotes.push(promote);
                }
            }
        }
        self.flush_promotes(ctx);
    }

    fn try_complete_demote(&mut self, lock: LockId, ctx: &mut Context<'_, NetLockMsg>) {
        if let Some(server_idx) = self.dp.complete_demote(lock) {
            self.pending_demotes.remove(&lock);
            self.stats.migrations_done += 1;
            let dst = self.servers[server_idx];
            ctx.send_after(dst, NetLockMsg::CtrlDemote { lock }, self.cfg.traversal);
            self.flush_promotes(ctx);
        }
    }

    fn flush_promotes(&mut self, ctx: &mut Context<'_, NetLockMsg>) {
        if !self.pending_demotes.is_empty() || self.pending_promotes.is_empty() {
            return;
        }
        for op in std::mem::take(&mut self.pending_promotes) {
            let MigrationOp::Promote {
                lock,
                qid,
                left,
                right,
                home_server,
            } = op
            else {
                continue;
            };
            // Reserve the region; the directory flips only when the
            // server confirms its queue drained (CtrlPromoteReady).
            self.promote_reservations
                .insert(lock, (qid, left, right, home_server));
            let dst = self.servers[home_server];
            ctx.send_after(dst, NetLockMsg::CtrlPromote { lock }, self.cfg.traversal);
        }
    }

    /// Drain `self.actions` (filled by the preceding `process` call)
    /// into the network. Actions are `Copy`, so reading them out by
    /// index keeps the buffer borrow disjoint from the sends below.
    fn emit(&mut self, extra_passes: u64, ctx: &mut Context<'_, NetLockMsg>) {
        self.emit_with_sink(extra_passes, ctx, None);
    }

    /// `emit`, but with an optional grant sink: while unpacking a batch
    /// the per-element `SendGrant` actions are collected instead of
    /// sent, so the whole burst's grants can be coalesced into one
    /// [`NetLockMsg::GrantBatch`] per destination client (one simulator
    /// event instead of one per virtual request). One-RTT grants still
    /// go through the database server individually — the fetch is
    /// per-item. Non-grant actions are sent exactly as on the
    /// individual path.
    fn emit_with_sink(
        &mut self,
        extra_passes: u64,
        ctx: &mut Context<'_, NetLockMsg>,
        mut grant_sink: Option<&mut Vec<GrantMsg>>,
    ) {
        let delay =
            self.cfg.traversal + SimDuration(self.cfg.pass_latency.as_nanos() * extra_passes);
        let coalesce = grant_sink.is_some() && (!self.cfg.one_rtt || self.db_servers.is_empty());
        for i in 0..self.actions.len() {
            let act = self.actions[i];
            match act {
                DpAction::SendGrant(grant) if coalesce => {
                    grant_sink.as_deref_mut().expect("coalesce").push(grant);
                }
                DpAction::SendGrant(grant) => self.send_grant(grant, delay, ctx),
                DpAction::ForwardAcquire {
                    server,
                    req,
                    buffer_only,
                } => {
                    let Some(&dst) = self.servers.get(server) else {
                        // Rack has no lock server (switch-only deploy):
                        // the request is lost; the client's retry covers
                        // it, like any other drop.
                        self.stats.drops += 1;
                        continue;
                    };
                    ctx.send_after(dst, NetLockMsg::Forwarded { req, buffer_only }, delay);
                }
                DpAction::ForwardRelease { server, rel } => {
                    let Some(&dst) = self.servers.get(server) else {
                        self.stats.drops += 1;
                        continue;
                    };
                    ctx.send_after(dst, NetLockMsg::Release(rel), delay);
                }
                DpAction::SendQueueSpace {
                    server,
                    lock,
                    space,
                } => {
                    let Some(&dst) = self.servers.get(server) else {
                        self.stats.drops += 1;
                        continue;
                    };
                    ctx.send_after(dst, NetLockMsg::QueueSpace { lock, space }, delay);
                }
                DpAction::Drop { .. } => {
                    self.stats.drops += 1;
                }
            }
        }
    }

    fn send_grant(
        &mut self,
        grant: GrantMsg,
        delay: SimDuration,
        ctx: &mut Context<'_, NetLockMsg>,
    ) {
        // Every grant the switch emits authorizes exactly one release.
        *self
            .granted_outstanding
            .entry((grant.lock, grant.txn))
            .or_insert(0) += 1;
        if self.cfg.one_rtt && !self.db_servers.is_empty() {
            // One-RTT transactions: forward the granted request to the
            // database server that owns the item; the client gets data
            // and grant in a single message (§4.1).
            let db = self.db_servers[grant.lock.0 as usize % self.db_servers.len()];
            self.stats.grants_to_db += 1;
            ctx.send_after(db, NetLockMsg::DbFetch { grant }, delay);
        } else {
            self.stats.grants_sent += 1;
            // Convention: ClientAddr(n) is node n (assigned by the rack
            // builder).
            ctx.send_after(NodeId(grant.client.0), NetLockMsg::Grant(grant), delay);
        }
    }

    /// Unpack an [`NetLockMsg::AcquireBatch`]: admit every element
    /// through the data plane in slice order (identical per-request
    /// semantics to individual acquires arriving back-to-back at one
    /// timestamp), collecting grants for coalesced fan-back.
    fn process_acquire_batch(
        &mut self,
        reqs: &[netlock_proto::LockRequest],
        ctx: &mut Context<'_, NetLockMsg>,
    ) {
        let now = ctx.now().as_nanos();
        let mut grants: Vec<GrantMsg> = Vec::with_capacity(reqs.len());
        let mut max_extra = 0u64;
        for req in reqs.iter() {
            let before = self.dp.passes();
            self.dp.process_acquire(*req, now, &mut self.actions);
            let extra = (self.dp.passes() - before).saturating_sub(1);
            max_extra = max_extra.max(extra);
            self.emit_with_sink(extra, ctx, Some(&mut grants));
        }
        self.flush_grant_batches(grants, max_extra, ctx);
    }

    /// Unpack an [`NetLockMsg::ReleaseBatch`]: per element the release
    /// guard is consulted exactly as for an individual release, then
    /// the data plane processes it; grants popped for waiting requests
    /// are coalesced per destination client.
    fn process_release_batch(
        &mut self,
        rels: &[netlock_proto::ReleaseRequest],
        ctx: &mut Context<'_, NetLockMsg>,
    ) {
        let now = ctx.now().as_nanos();
        // Shared-mode releases can cascade one grant each; size for it.
        let mut grants: Vec<GrantMsg> = Vec::with_capacity(rels.len());
        let mut max_extra = 0u64;
        for rel in rels.iter() {
            let before = self.dp.passes();
            let guard_disabled = self.release_guard_disabled;
            let ledger = &mut self.granted_outstanding;
            let admitted = self
                .dp
                .process_release_guarded(*rel, now, &mut self.actions, |l, t| {
                    guard_disabled || Self::ledger_admit(ledger, l, t)
                });
            if !admitted {
                self.stats.stale_releases_filtered += 1;
                continue;
            }
            let extra = (self.dp.passes() - before).saturating_sub(1);
            max_extra = max_extra.max(extra);
            self.emit_with_sink(extra, ctx, Some(&mut grants));
            if self.pending_demotes.contains(&rel.lock) {
                self.try_complete_demote(rel.lock, ctx);
            }
        }
        self.flush_grant_batches(grants, max_extra, ctx);
    }

    /// Send the grants a batch produced, one event per destination
    /// client: a lone grant goes out as a plain [`NetLockMsg::Grant`]
    /// (individual clients queued behind an aggregate burst keep their
    /// wire format), two or more to the same client fold into one
    /// [`NetLockMsg::GrantBatch`]. All grants of the burst leave the
    /// egress together, so the whole flush is charged the batch's
    /// worst-case resubmit count.
    fn flush_grant_batches(
        &mut self,
        grants: Vec<GrantMsg>,
        max_extra: u64,
        ctx: &mut Context<'_, NetLockMsg>,
    ) {
        if grants.is_empty() {
            return;
        }
        let delay = self.cfg.traversal + SimDuration(self.cfg.pass_latency.as_nanos() * max_extra);
        // Group per destination, preserving grant order within each
        // client. Bursts almost always target one aggregate node, so a
        // linear scan over a tiny group list beats a hash map here.
        let mut groups: Vec<(u32, Vec<GrantMsg>)> = Vec::with_capacity(1);
        let burst = grants.len();
        for g in grants {
            *self.granted_outstanding.entry((g.lock, g.txn)).or_insert(0) += 1;
            self.stats.grants_sent += 1;
            match groups.iter_mut().find(|(c, _)| *c == g.client.0) {
                Some((_, group)) => group.push(g),
                None => {
                    // Size for the whole burst up front: it almost
                    // always lands on one aggregate client, and growing
                    // a multi-thousand-grant vec by doubling shows up
                    // on the batch hot path.
                    let mut group = Vec::with_capacity(burst);
                    group.push(g);
                    groups.push((g.client.0, group));
                }
            }
        }
        for (client, mut group) in groups {
            let msg = if group.len() == 1 {
                NetLockMsg::Grant(group.pop().expect("len 1"))
            } else {
                NetLockMsg::GrantBatch(group.into())
            };
            ctx.send_after(NodeId(client), msg, delay);
        }
    }

    /// One reallocation epoch: measure `(r_i, c_i)` from the data-plane
    /// counters (switch-resident locks) and the forward counters
    /// (server-resident locks), run Algorithm 3, and execute the
    /// resulting migration plan.
    fn realloc_tick(&mut self, ctx: &mut Context<'_, NetLockMsg>) {
        let Some(auto) = self.cfg.auto_realloc.clone() else {
            return;
        };
        // Don't start a new plan while the previous one is in flight
        // (including promotions whose server handshake hasn't finished).
        if self.pending_demotes.is_empty()
            && self.pending_promotes.is_empty()
            && self.promote_reservations.is_empty()
        {
            let epoch_secs = auto.epoch.as_secs_f64();
            let mut stats = control::harvest_stats(&mut self.dp, epoch_secs);
            // Stabilize c_i: round the high-water mark up to the next
            // power of two and floor it at the server estimate, so small
            // fluctuations between epochs don't resize regions (every
            // resize requires a drain-and-move).
            for s in &mut stats {
                s.contention = s.contention.next_power_of_two().max(auto.server_contention);
            }
            for (lock, count) in self.dp.cp_take_forward_counts() {
                let rate = count as f64 / epoch_secs.max(1e-9);
                // A lock promoted mid-epoch shows up both in the switch
                // harvest and the forward counts: merge, don't duplicate.
                if let Some(existing) = stats.iter_mut().find(|s| s.lock == lock) {
                    existing.rate += rate;
                    continue;
                }
                let home = self
                    .dp
                    .directory()
                    .get(lock)
                    .map(|e| e.home_server)
                    .or_else(|| self.dp.default_server_of(lock))
                    .unwrap_or(0);
                stats.push(control::LockStats {
                    lock,
                    rate,
                    contention: auto.server_contention,
                    home_server: home,
                });
            }
            let target =
                control::knapsack_allocate_bounded(&stats, auto.switch_slots, auto.max_regions);
            // Reorganize only when membership or region sizes actually
            // change; identical sets in a different order are not worth
            // a drain-and-move of every queue.
            if !self.allocation_matches(&target) {
                let ops = control::plan_migration(&self.dp, &target);
                if !ops.is_empty() {
                    self.start_migration(ops, ctx);
                }
            }
        }
        ctx.set_timer(auto.epoch, TIMER_REALLOC);
    }

    /// Whether the current residency equals `target` as a lock→slots
    /// map (ignoring region positions).
    fn allocation_matches(&self, target: &control::Allocation) -> bool {
        let current = self.dp.directory().switch_resident();
        if current.len() != target.in_switch.len() {
            return false;
        }
        let crate::dataplane::Engine::Fcfs(q) = self.dp.engine() else {
            return false;
        };
        let mut cur: Vec<(LockId, u32)> = current
            .iter()
            .map(|&(lock, qid, _)| (lock, q.cp_region(qid).capacity()))
            .collect();
        let mut tgt: Vec<(LockId, u32)> = target
            .in_switch
            .iter()
            .map(|&(lock, slots, _)| (lock, slots))
            .collect();
        cur.sort_unstable();
        tgt.sort_unstable();
        cur == tgt
    }

    fn control_tick(&mut self, ctx: &mut Context<'_, NetLockMsg>) {
        // Lease sweep: force-release expired holders.
        if !self.cfg.lease.is_zero() {
            let expired =
                control::expired_leases(&self.dp, ctx.now().as_nanos(), self.cfg.lease.as_nanos());
            for rel in expired {
                self.stats.lease_expirations += 1;
                // The expiry consumes the holder's outstanding grant;
                // the holder's own (late) release will then be filtered
                // instead of dequeuing whoever was granted next.
                if !self.release_guard_disabled {
                    let _ = Self::ledger_admit(&mut self.granted_outstanding, rel.lock, rel.txn);
                }
                let before = self.dp.passes();
                self.dp.process(
                    NetLockMsg::Release(rel),
                    ctx.now().as_nanos(),
                    &mut self.actions,
                );
                let extra = self.dp.passes() - before - 1;
                let lock = rel.lock;
                self.emit(extra, ctx);
                if self.pending_demotes.contains(&lock) {
                    self.try_complete_demote(lock, ctx);
                }
            }
        }
        // Drain checks for pending demotions.
        let pending: Vec<LockId> = self.pending_demotes.iter().copied().collect();
        for lock in pending {
            self.try_complete_demote(lock, ctx);
        }
        ctx.set_timer(self.cfg.control_tick, TIMER_CONTROL_TICK);
    }
}

impl Node<NetLockMsg> for SwitchNode {
    fn on_start(&mut self, ctx: &mut Context<'_, NetLockMsg>) {
        if !self.cfg.control_tick.is_zero() {
            ctx.set_timer(self.cfg.control_tick, TIMER_CONTROL_TICK);
        }
        if let Some(auto) = &self.cfg.auto_realloc {
            ctx.set_timer(auto.epoch, TIMER_REALLOC);
        }
    }

    fn on_packet(&mut self, pkt: Packet<NetLockMsg>, ctx: &mut Context<'_, NetLockMsg>) {
        // Aggregate-population bursts take the batched path: unpack,
        // admit per element, coalesce grant fan-back.
        let pkt = match pkt.payload {
            NetLockMsg::AcquireBatch(reqs) => {
                self.process_acquire_batch(&reqs, ctx);
                return;
            }
            NetLockMsg::ReleaseBatch(rels) => {
                self.process_release_batch(&rels, ctx);
                return;
            }
            payload => Packet { payload, ..pkt },
        };
        let released_lock = match &pkt.payload {
            NetLockMsg::Release(rel) => Some(rel.lock),
            _ => None,
        };
        // Release guard: a release for a switch-resident lock is only
        // admitted if an outstanding grant authorizes it (the guard and
        // the data plane share one directory lookup). Server-resident
        // (and unknown) locks are forwarded untouched — the server's
        // lock table matches releases by txn itself.
        if let NetLockMsg::Release(rel) = &pkt.payload {
            let rel = *rel;
            let before = self.dp.passes();
            let guard_disabled = self.release_guard_disabled;
            let ledger = &mut self.granted_outstanding;
            let admitted = self.dp.process_release_guarded(
                rel,
                ctx.now().as_nanos(),
                &mut self.actions,
                |l, t| guard_disabled || Self::ledger_admit(ledger, l, t),
            );
            if !admitted {
                self.stats.stale_releases_filtered += 1;
                return;
            }
            let extra = (self.dp.passes() - before).saturating_sub(1);
            self.emit(extra, ctx);
        } else {
            // Complete a reserved promotion: install the region +
            // directory entry just before the buffered requests are
            // enqueued.
            if let NetLockMsg::CtrlPromoteReady { lock, .. } = &pkt.payload {
                if let Some((qid, left, right, home)) = self.promote_reservations.remove(lock) {
                    self.dp.prepare_promote(*lock, qid, left, right, home);
                    self.stats.migrations_done += 1;
                }
            }
            let before = self.dp.passes();
            self.dp
                .process(pkt.payload, ctx.now().as_nanos(), &mut self.actions);
            let extra = (self.dp.passes() - before).saturating_sub(1);
            self.emit(extra, ctx);
        }
        // A release may have completed a drain for a demoting lock.
        if let Some(lock) = released_lock {
            if self.pending_demotes.contains(&lock) {
                self.try_complete_demote(lock, ctx);
            }
            // Backup-handback mode: report drained queues to the
            // restarted original switch.
            if let Some(original) = self.cfg.backup_handback_to {
                let drained = match self.dp.directory().get(lock).map(|e| e.residence) {
                    Some(crate::directory::Residence::Switch { qid }) => match self.dp.engine() {
                        crate::dataplane::Engine::Fcfs(q) => q.cp_region(qid).count == 0,
                        crate::dataplane::Engine::Priority(e) => e.cp_total_count(qid) == 0,
                    },
                    _ => false,
                };
                if drained {
                    ctx.send_after(
                        original,
                        NetLockMsg::CtrlHandback { lock },
                        self.cfg.traversal,
                    );
                }
            }
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_, NetLockMsg>) {
        if token == TIMER_CONTROL_TICK {
            self.control_tick(ctx);
        } else if token == TIMER_REALLOC {
            self.realloc_tick(ctx);
        }
    }

    fn name(&self) -> &str {
        "lock-switch"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::{apply_allocation, knapsack_allocate, LockStats};
    use crate::shared_queue::SharedQueueLayout;
    use netlock_proto::{ClientAddr, LockMode, LockRequest, Priority, TenantId, TxnId};
    use netlock_sim::{Packet as SimPacket, SimTime, Simulator};

    struct Sink(Vec<NetLockMsg>);
    impl Node<NetLockMsg> for Sink {
        fn on_packet(&mut self, pkt: SimPacket<NetLockMsg>, _ctx: &mut Context<'_, NetLockMsg>) {
            self.0.push(pkt.payload);
        }
        fn on_timer(&mut self, _t: u64, _c: &mut Context<'_, NetLockMsg>) {}
    }

    fn acquire(lock: u32, txn: u64, client: u32, at: u64) -> NetLockMsg {
        NetLockMsg::Acquire(LockRequest {
            lock: netlock_proto::LockId(lock),
            mode: LockMode::Exclusive,
            txn: TxnId(txn),
            client: ClientAddr(client),
            tenant: TenantId(0),
            priority: Priority(0),
            issued_at_ns: at,
        })
    }

    fn dp(locks: u32) -> DataPlane {
        let mut dp = DataPlane::new_fcfs(&SharedQueueLayout::small(2, 64, 16));
        let stats: Vec<LockStats> = (0..locks)
            .map(|l| LockStats {
                lock: netlock_proto::LockId(l),
                rate: 1.0,
                contention: 8,
                home_server: 0,
            })
            .collect();
        apply_allocation(&mut dp, &knapsack_allocate(&stats, 128));
        dp
    }

    #[test]
    fn grant_routed_to_client_node() {
        let mut sim: Simulator<NetLockMsg> = Simulator::with_seed(1);
        let client = sim.add_node(Box::new(Sink(Vec::new())));
        let switch = sim.add_node(Box::new(SwitchNode::new(
            dp(4),
            SwitchConfig::default(),
            vec![],
        )));
        sim.inject(client, switch, acquire(1, 5, client.0, 0));
        sim.run_until(SimTime(1_000_000));
        sim.read_node::<Sink, _>(client, |s| {
            assert_eq!(s.0.len(), 1);
            assert!(matches!(s.0[0], NetLockMsg::Grant(g) if g.txn == TxnId(5)));
        });
    }

    #[test]
    fn one_rtt_routes_grant_through_db_server() {
        let mut sim: Simulator<NetLockMsg> = Simulator::with_seed(2);
        let client = sim.add_node(Box::new(Sink(Vec::new())));
        let db = sim.add_node(Box::new(Sink(Vec::new())));
        let switch = sim.add_node(Box::new(
            SwitchNode::new(
                dp(4),
                SwitchConfig {
                    one_rtt: true,
                    ..Default::default()
                },
                vec![],
            )
            .with_db_servers(vec![db]),
        ));
        sim.inject(client, switch, acquire(1, 5, client.0, 0));
        sim.run_until(SimTime(1_000_000));
        sim.read_node::<Sink, _>(client, |s| assert!(s.0.is_empty()));
        sim.read_node::<Sink, _>(db, |s| {
            assert_eq!(s.0.len(), 1);
            assert!(matches!(s.0[0], NetLockMsg::DbFetch { .. }));
        });
        sim.read_node::<SwitchNode, _>(switch, |s| {
            assert_eq!(s.stats().grants_to_db, 1);
            assert_eq!(s.stats().grants_sent, 0);
        });
    }

    #[test]
    fn lease_sweeper_frees_stuck_holder() {
        let mut sim: Simulator<NetLockMsg> = Simulator::with_seed(3);
        let client = sim.add_node(Box::new(Sink(Vec::new())));
        let switch = sim.add_node(Box::new(SwitchNode::new(
            dp(4),
            SwitchConfig {
                lease: SimDuration::from_millis(2),
                control_tick: SimDuration::from_millis(1),
                ..Default::default()
            },
            vec![],
        )));
        // Holder that never releases; a waiter behind it.
        sim.inject(client, switch, acquire(1, 1, client.0, 0));
        sim.inject(client, switch, acquire(1, 2, client.0, 0));
        sim.run_until(SimTime(SimDuration::from_millis(10).as_nanos()));
        sim.read_node::<Sink, _>(client, |s| {
            // Grant for 1, then (after the lease fires) grant for 2.
            assert!(
                s.0.len() >= 2,
                "sweeper must grant the waiter: {:?}",
                s.0.len()
            );
        });
        sim.read_node::<SwitchNode, _>(switch, |s| {
            assert!(s.stats().lease_expirations >= 1);
        });
    }

    #[test]
    fn reboot_forgets_everything() {
        let mut sim: Simulator<NetLockMsg> = Simulator::with_seed(4);
        let client = sim.add_node(Box::new(Sink(Vec::new())));
        let switch = sim.add_node(Box::new(SwitchNode::new(
            dp(4),
            SwitchConfig::default(),
            vec![],
        )));
        sim.inject(client, switch, acquire(1, 1, client.0, 0));
        sim.run_until(SimTime(100_000));
        sim.with_node::<SwitchNode, _>(switch, |s| s.reboot());
        sim.inject(client, switch, acquire(1, 2, client.0, 0));
        sim.run_until(SimTime(1_000_000));
        // Post-reboot the directory is empty and there are no servers:
        // the request is dropped, not granted.
        sim.read_node::<Sink, _>(client, |s| {
            assert_eq!(s.0.len(), 1, "only the pre-reboot grant");
        });
        sim.read_node::<SwitchNode, _>(switch, |s| {
            assert!(s.dataplane().directory().is_empty());
        });
    }
}
