//! Multi-pipeline layout (§4.2 "Pipeline layout").
//!
//! A Tofino-class switch has several independent pipelines; register
//! state is **not** shared between them. A packet enters through the
//! ingress pipe of its arrival port and leaves through the egress pipe
//! of its departure port; touching state that lives in a different pipe
//! requires *recirculating* the packet (a full extra traversal).
//!
//! NetLock's placement rule: each lock's queue lives in the egress pipe
//! that connects to the lock's home server. A request for a
//! switch-resident lock is sent toward that server, so it traverses the
//! owning egress pipe anyway — zero recirculations on the hot path; a
//! granted request is mirrored from that pipe to the client (or the
//! database server in one-RTT mode). This module checks placements and
//! counts the recirculations a layout would cost, so the zero-recirc
//! property of the paper's design is tested rather than assumed.

/// A pipeline identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PipeId(pub u8);

/// Static description of the switch's port-to-pipe wiring.
#[derive(Clone, Debug)]
pub struct PipeLayout {
    pipes: u8,
    /// `port_pipe[port] = pipe` for every front-panel port.
    port_pipe: Vec<u8>,
}

impl PipeLayout {
    /// A layout with `pipes` pipelines and `ports` ports distributed
    /// round-robin (how front panels are typically wired).
    pub fn new(pipes: u8, ports: usize) -> PipeLayout {
        assert!(pipes >= 1);
        PipeLayout {
            pipes,
            port_pipe: (0..ports).map(|p| (p % pipes as usize) as u8).collect(),
        }
    }

    /// Number of pipelines.
    pub fn pipes(&self) -> u8 {
        self.pipes
    }

    /// The pipe serving `port`.
    pub fn pipe_of_port(&self, port: usize) -> PipeId {
        PipeId(self.port_pipe[port])
    }

    /// Recirculations needed for a request that arrives on
    /// `ingress_port`, must execute lock logic in `lock_pipe`, and
    /// departs via `egress_port`.
    ///
    /// The lock logic runs in an egress pipe, so it is free exactly when
    /// the packet's egress port belongs to `lock_pipe`. Failing that, a
    /// packet whose *ingress* pipe owns the lock can execute the logic
    /// by recirculating once through one of that pipe's egress ports
    /// before departing. Worst case — all three pipes distinct — the
    /// packet recirculates once to reach the owning pipe and once more
    /// to leave through the real egress pipe.
    pub fn recirculations(
        &self,
        ingress_port: usize,
        lock_pipe: PipeId,
        egress_port: usize,
    ) -> u32 {
        if self.pipe_of_port(egress_port) == lock_pipe {
            0
        } else if self.pipe_of_port(ingress_port) == lock_pipe {
            1
        } else {
            2
        }
    }

    /// NetLock's placement: the pipe of the lock's home-server port.
    pub fn netlock_placement(&self, home_server_port: usize) -> PipeId {
        self.pipe_of_port(home_server_port)
    }
}

/// Audit a placement against a traffic pattern: returns the fraction of
/// packets that would recirculate.
///
/// `flows` is a list of `(ingress_port, lock_pipe, egress_port, weight)`.
pub fn recirculation_fraction(layout: &PipeLayout, flows: &[(usize, PipeId, usize, f64)]) -> f64 {
    let total: f64 = flows.iter().map(|f| f.3).sum();
    if total == 0.0 {
        return 0.0;
    }
    let recirc: f64 = flows
        .iter()
        .filter(|&&(i, p, e, _)| layout.recirculations(i, p, e) > 0)
        .map(|f| f.3)
        .sum();
    recirc / total
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4 pipes, 32 ports; servers on ports 0..4, clients on 8..32.
    fn layout() -> PipeLayout {
        PipeLayout::new(4, 32)
    }

    #[test]
    fn ports_spread_over_pipes() {
        let l = layout();
        assert_eq!(l.pipe_of_port(0), PipeId(0));
        assert_eq!(l.pipe_of_port(1), PipeId(1));
        assert_eq!(l.pipe_of_port(4), PipeId(0));
        assert_eq!(l.pipes(), 4);
    }

    #[test]
    fn netlock_placement_never_recirculates_on_the_forward_path() {
        // Requests travel toward the lock's home server; with the lock
        // queue in the server's egress pipe, no forwarded request
        // recirculates, regardless of which client port it came from.
        let l = layout();
        for server_port in 0..4 {
            let pipe = l.netlock_placement(server_port);
            for client_port in 8..32 {
                assert_eq!(
                    l.recirculations(client_port, pipe, server_port),
                    0,
                    "client {client_port} → server {server_port}"
                );
            }
        }
    }

    #[test]
    fn naive_placement_recirculates() {
        // Placing every lock in pipe 0 forces requests leaving through
        // other pipes to recirculate.
        let l = layout();
        let all_in_pipe0 = PipeId(0);
        // Server port 1 is in pipe 1: recirculation needed.
        assert_eq!(l.recirculations(8, all_in_pipe0, 1), 1);
        // Server port 0 is in pipe 0: fine.
        assert_eq!(l.recirculations(8, all_in_pipe0, 0), 0);
    }

    #[test]
    fn three_distinct_pipes_cost_two_recirculations() {
        // Ingress port 9 is in pipe 1, the lock lives in pipe 2, and the
        // packet leaves via port 0 in pipe 0: one recirculation to reach
        // the owning pipe, one more to depart.
        let l = layout();
        assert_eq!(l.recirculations(9, PipeId(2), 0), 2);
        // Same, but the ingress pipe owns the lock: a single
        // recirculation suffices.
        assert_eq!(l.recirculations(9, PipeId(1), 0), 1);
    }

    #[test]
    fn single_pipe_switch_never_recirculates() {
        // With one pipeline every port shares the lock's pipe, so no
        // placement can force a recirculation.
        let l = PipeLayout::new(1, 16);
        for ingress in 0..16 {
            for egress in 0..16 {
                assert_eq!(l.recirculations(ingress, PipeId(0), egress), 0);
            }
        }
    }

    #[test]
    fn recirculation_fraction_audit() {
        let l = layout();
        // NetLock placement: every flow's lock pipe matches its server
        // port's pipe → 0%.
        let good: Vec<(usize, PipeId, usize, f64)> = (0..4)
            .flat_map(|srv| (8..16).map(move |cli| (cli, PipeId((srv % 4) as u8), srv, 1.0)))
            .collect();
        assert_eq!(recirculation_fraction(&l, &good), 0.0);

        // Everything crammed into pipe 0: 3 of 4 server ports are in
        // other pipes → 75%.
        let bad: Vec<(usize, PipeId, usize, f64)> = (0..4)
            .flat_map(|srv| (8..16).map(move |cli| (cli, PipeId(0), srv, 1.0)))
            .collect();
        assert!((recirculation_fraction(&l, &bad) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn empty_flows_are_zero() {
        assert_eq!(recirculation_fraction(&layout(), &[]), 0.0);
    }
}
