//! NetChain-style chain replication of one lock partition.
//!
//! Each partition's register state (queue slots, heads/tails, the
//! granted-credit ledger, tenant meters) lives on a *chain* of
//! switches. The head is the only member that admits client
//! operations: it filters stale releases against the replicated credit
//! ledger, assigns each admitted operation a dense sequence number,
//! stamps it with its own clock, applies it to its data plane, and
//! forwards it down the chain as `NetLockMsg::ChainOp`. Every member
//! applies the same `(op, stamp)` against an identical data plane —
//! the state machine is deterministic, so register state is replicated
//! by construction. Only the *tail* emits the resulting grants
//! (tail-ack: a grant reaching a client proves every member applied
//! the op, so it survives any single crash) and acknowledges applied
//! sequence numbers upstream so members can truncate their bounded
//! replication logs.
//!
//! Failure handling is pure control plane, driven by missed control
//! ticks: every member pings the [`ChainController`] from its tick;
//! the controller declares a member dead after `dead_after` of
//! silence, splices it out of the chain (`CtrlChainConfig`), and lets
//! the predecessor *replay its unacknowledged log suffix* to its new
//! successor — that replay is what makes a mid-chain crash lossless. A
//! member promoted to tail re-emits its unacknowledged outputs (exact
//! duplicates of anything the dead tail already sent; clients dedupe
//! by issue stamp). A head death additionally re-routes clients via a
//! fresh `CtrlPartitionMap` broadcast. If a partition loses *every*
//! member, the first one to return from its reboot is reset
//! (`CtrlChainReset`): registers wiped, directory reprogrammed, one
//! lease of grace before granting again (§4.5), because real switch
//! registers do not survive a crash.

use std::collections::{BTreeMap, HashMap, VecDeque};

use netlock_proto::{LockId, NetLockMsg, TxnId};
use netlock_sim::{Context, Node, NodeId, Packet, SimDuration};

use crate::action_buf::ActionBuf;
use crate::analysis::layout::ProgramLayout;
use crate::control::{self, Allocation};
use crate::dataplane::{DataPlane, DpAction};
use crate::partition::replicated_layout;

/// Timer token of a chain member's control tick (ping + lease sweep).
const TIMER_CHAIN_TICK: u64 = 1;
/// Timer token of the controller's failure-detector tick.
const TIMER_CONTROLLER_TICK: u64 = 1;

/// One logged, applied operation: what a predecessor retransmits to a
/// spliced-in successor, and what a freshly promoted tail re-emits.
#[derive(Clone, Debug)]
struct LogEntry {
    seq: u64,
    stamp_ns: u64,
    op: NetLockMsg,
    /// The data-plane outputs this op produced (identical on every
    /// member); kept so a new tail can re-emit without re-applying.
    outputs: Vec<DpAction>,
    /// Extra pipeline passes the apply cost (latency accounting).
    extra_passes: u64,
}

/// Configuration of one chain member.
#[derive(Clone, Debug)]
pub struct ReplConfig {
    /// Partition this chain serves.
    pub partition: u16,
    /// This member's index in the chain as originally deployed.
    pub member: u16,
    /// The original chain, head first (node ids of all members).
    pub chain: Vec<NodeId>,
    /// The chain controller node.
    pub controller: NodeId,
    /// Ingress-to-egress traversal latency per emission.
    pub traversal: SimDuration,
    /// Added latency per extra pipeline pass.
    pub pass_latency: SimDuration,
    /// Lease duration (head force-releases expired holders). Zero
    /// disables sweeping.
    pub lease: SimDuration,
    /// Control tick: ping cadence and lease-sweep granularity.
    pub control_tick: SimDuration,
}

impl Default for ReplConfig {
    fn default() -> Self {
        ReplConfig {
            partition: 0,
            member: 0,
            chain: Vec::new(),
            controller: NodeId(0),
            traversal: SimDuration::from_nanos(500),
            pass_latency: SimDuration::from_nanos(100),
            lease: SimDuration::from_millis(10),
            control_tick: SimDuration::from_millis(1),
        }
    }
}

/// Counters of one chain member.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplStats {
    /// Grants emitted to clients (tail role only).
    pub grants_sent: u64,
    /// Packets dropped (policy, unknown lock, grace window).
    pub drops: u64,
    /// Client ops that arrived at a non-head member (stale routing).
    pub misrouted: u64,
    /// Acquires refused during the post-reset grace window.
    pub grace_drops: u64,
    /// Releases filtered by the replicated credit ledger.
    pub stale_releases_filtered: u64,
    /// Force-releases issued by the head's lease sweeper.
    pub lease_expirations: u64,
    /// Ops applied to the local data plane.
    pub ops_applied: u64,
    /// Ops forwarded to a successor.
    pub ops_forwarded: u64,
    /// Duplicate chain ops ignored (replay overlap).
    pub dup_ops_ignored: u64,
    /// Log entries retransmitted to a spliced-in successor.
    pub replayed: u64,
    /// Outputs re-emitted after a promotion to tail.
    pub reemitted: u64,
    /// Chain reconfigurations accepted.
    pub splices: u64,
    /// Full resets performed (sole-survivor rejoin).
    pub resets: u64,
}

/// One switch in a partition's replication chain.
pub struct ReplSwitch {
    dp: DataPlane,
    cfg: ReplConfig,
    /// This member's own node id (`cfg.chain[cfg.member]`).
    me: NodeId,
    /// What the data plane is programmed with; reapplied on reset.
    program: Allocation,
    /// Current chain epoch (bumped by every controller config).
    epoch: u32,
    /// The live chain, head first.
    chain: Vec<NodeId>,
    /// Highest sequence number applied locally.
    last_applied: u64,
    /// Highest sequence number acknowledged by the tail.
    acked: u64,
    /// Ops received out of order (cross-link races during a splice),
    /// held until the gap closes.
    pending: BTreeMap<u64, (u64, NetLockMsg)>,
    /// Applied-but-unacknowledged ops, ascending seq.
    log: VecDeque<LogEntry>,
    /// Replicated release guard: outstanding grants per `(lock, txn)`.
    /// Maintained identically on every member (incremented when an
    /// applied op emits a grant, decremented by applied releases), so
    /// a freshly promoted head filters stale releases correctly.
    granted_outstanding: HashMap<(LockId, TxnId), u32>,
    /// Refuse acquires until this stamp (post-reset §4.5 grace).
    grace_until_ns: u64,
    /// Sabotage hook: drop the log-replay / re-emit duty on splice.
    replay_disabled: bool,
    actions: ActionBuf,
    stats: ReplStats,
}

impl ReplSwitch {
    /// Build a chain member around a programmed data plane.
    ///
    /// `program` is the allocation the data plane was programmed with;
    /// the member keeps it to reprogram itself after a
    /// `CtrlChainReset` (the control plane's copy of the directory).
    pub fn new(dp: DataPlane, program: Allocation, cfg: ReplConfig) -> ReplSwitch {
        assert!(
            (cfg.member as usize) < cfg.chain.len(),
            "member index outside chain"
        );
        let me = cfg.chain[cfg.member as usize];
        let chain = cfg.chain.clone();
        ReplSwitch {
            dp,
            cfg,
            me,
            program,
            epoch: 0,
            chain,
            last_applied: 0,
            acked: 0,
            pending: BTreeMap::new(),
            log: VecDeque::new(),
            granted_outstanding: HashMap::new(),
            grace_until_ns: 0,
            replay_disabled: false,
            actions: ActionBuf::new(),
            stats: ReplStats::default(),
        }
    }

    /// Disable log replay and tail re-emission on chain repair
    /// (chaos-suite sabotage hook: proves the oracle notices when the
    /// failover path silently loses the in-flight window).
    #[doc(hidden)]
    pub fn sabotage_disable_replay(&mut self) {
        self.replay_disabled = true;
    }

    /// Node counters.
    pub fn stats(&self) -> ReplStats {
        self.stats
    }

    /// Data-plane handle (tests / harness).
    pub fn dataplane(&self) -> &DataPlane {
        &self.dp
    }

    /// Current chain epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Highest locally applied sequence number.
    pub fn last_applied(&self) -> u64 {
        self.last_applied
    }

    /// The feasibility layout of this member: the queue program plus
    /// the replication metadata (see [`replicated_layout`]).
    pub fn layout(&self, log_window: usize) -> ProgramLayout {
        replicated_layout(&self.dp, log_window)
    }

    /// Timer token of the chain tick; a revived member gets its timer
    /// chain back via `CtrlChainReset`, not via harness injection.
    pub const CHAIN_TIMER_TOKEN: u64 = TIMER_CHAIN_TICK;

    fn position(&self) -> Option<usize> {
        self.chain.iter().position(|&n| n == self.me)
    }

    fn is_head(&self) -> bool {
        self.position() == Some(0)
    }

    fn is_tail(&self) -> bool {
        match self.position() {
            Some(p) => p + 1 == self.chain.len(),
            None => false,
        }
    }

    fn successor(&self) -> Option<NodeId> {
        let p = self.position()?;
        self.chain.get(p + 1).copied()
    }

    /// Members upstream of this one (receive tail acks).
    fn upstream(&self) -> Vec<NodeId> {
        match self.position() {
            Some(p) => self.chain[..p].to_vec(),
            None => Vec::new(),
        }
    }

    /// Whether an outstanding grant authorizes releasing `(lock, txn)`.
    /// Read-only: the credit is consumed when the release op is
    /// *applied*, so every member's ledger stays identical.
    fn release_authorized(&self, lock: LockId, txn: TxnId) -> bool {
        self.granted_outstanding
            .get(&(lock, txn))
            .is_some_and(|n| *n > 0)
    }

    fn consume_credit(&mut self, lock: LockId, txn: TxnId) {
        if let Some(n) = self.granted_outstanding.get_mut(&(lock, txn)) {
            *n -= 1;
            if *n == 0 {
                self.granted_outstanding.remove(&(lock, txn));
            }
        }
    }

    /// Head only: admit one client operation into the chain.
    fn admit(&mut self, op: NetLockMsg, ctx: &mut Context<'_, NetLockMsg>) {
        let now = ctx.now().as_nanos();
        if let NetLockMsg::Acquire(_) = &op {
            if now < self.grace_until_ns {
                // §4.5 grace after a state-losing reset: a pre-crash
                // holder's lease may still be running; granting now
                // could double-grant. Drop; the client's retry lands
                // after the window.
                self.stats.grace_drops += 1;
                return;
            }
        }
        if let NetLockMsg::Release(rel) = &op {
            if !self.release_authorized(rel.lock, rel.txn) {
                self.stats.stale_releases_filtered += 1;
                return;
            }
        }
        let seq = self.last_applied + 1;
        self.ingest(seq, now, op, ctx);
    }

    /// Apply-or-buffer one sequenced op (head admission path and
    /// `ChainOp` receipt path converge here).
    fn ingest(
        &mut self,
        seq: u64,
        stamp_ns: u64,
        op: NetLockMsg,
        ctx: &mut Context<'_, NetLockMsg>,
    ) {
        if seq <= self.last_applied {
            self.stats.dup_ops_ignored += 1;
            return;
        }
        if seq > self.last_applied + 1 {
            // Gap: a replayed suffix and late in-flight ops from a
            // spliced-out predecessor can interleave across links.
            self.pending.insert(seq, (stamp_ns, op));
            return;
        }
        self.apply(seq, stamp_ns, op, ctx);
        while let Some((&next, _)) = self.pending.first_key_value() {
            if next != self.last_applied + 1 {
                // Drop already-applied stragglers, keep future ones.
                if next <= self.last_applied {
                    self.pending.pop_first();
                    self.stats.dup_ops_ignored += 1;
                    continue;
                }
                break;
            }
            let (seq, (stamp_ns, op)) = self.pending.pop_first().expect("checked non-empty");
            self.apply(seq, stamp_ns, op, ctx);
        }
    }

    fn apply(
        &mut self,
        seq: u64,
        stamp_ns: u64,
        op: NetLockMsg,
        ctx: &mut Context<'_, NetLockMsg>,
    ) {
        let before = self.dp.stats().passes;
        self.dp.process(op.clone(), stamp_ns, &mut self.actions);
        let extra_passes = (self.dp.stats().passes - before).saturating_sub(1);
        // Ledger, replicated: the release consumes its credit; every
        // grant the op produced opens one.
        if let NetLockMsg::Release(rel) = &op {
            self.consume_credit(rel.lock, rel.txn);
        }
        let outputs: Vec<DpAction> = (0..self.actions.len()).map(|i| self.actions[i]).collect();
        for act in &outputs {
            if let DpAction::SendGrant(g) = act {
                *self.granted_outstanding.entry((g.lock, g.txn)).or_insert(0) += 1;
            }
        }
        self.last_applied = seq;
        self.stats.ops_applied += 1;
        if let Some(succ) = self.successor() {
            self.stats.ops_forwarded += 1;
            ctx.send_after(
                succ,
                NetLockMsg::ChainOp {
                    partition: self.cfg.partition,
                    seq,
                    stamp_ns,
                    op: Box::new(op.clone()),
                },
                self.cfg.traversal,
            );
        }
        let entry = LogEntry {
            seq,
            stamp_ns,
            op,
            outputs,
            extra_passes,
        };
        if self.is_tail() {
            self.emit(&entry, ctx);
            self.send_acks(ctx);
        }
        self.log.push_back(entry);
    }

    /// Tail: cumulative apply-ack to every upstream member.
    fn send_acks(&mut self, ctx: &mut Context<'_, NetLockMsg>) {
        let ack = NetLockMsg::ChainAck {
            partition: self.cfg.partition,
            seq: self.last_applied,
        };
        for up in self.upstream() {
            ctx.send_after(up, ack.clone(), self.cfg.traversal);
        }
    }

    /// Emit one applied op's outputs into the network (tail duty).
    fn emit(&mut self, entry: &LogEntry, ctx: &mut Context<'_, NetLockMsg>) {
        let delay =
            self.cfg.traversal + SimDuration(self.cfg.pass_latency.as_nanos() * entry.extra_passes);
        for act in &entry.outputs {
            match *act {
                DpAction::SendGrant(grant) => {
                    self.stats.grants_sent += 1;
                    // Convention: ClientAddr(n) is node n.
                    ctx.send_after(NodeId(grant.client.0), NetLockMsg::Grant(grant), delay);
                }
                // A partitioned chain deploy has no lock servers: the
                // whole partition is switch-resident. Anything the
                // data plane wanted to forward is dropped, like any
                // unknown-lock traffic; client retries cover it.
                DpAction::ForwardAcquire { .. }
                | DpAction::ForwardRelease { .. }
                | DpAction::SendQueueSpace { .. }
                | DpAction::Drop { .. } => {
                    self.stats.drops += 1;
                }
            }
        }
    }

    fn on_ack(&mut self, seq: u64) {
        // A sole-member chain has no upstream; any ack still in flight
        // is from a pre-reset epoch and must not truncate the new log.
        if self.chain.len() <= 1 {
            return;
        }
        if seq > self.acked {
            self.acked = seq;
            while self.log.front().is_some_and(|e| e.seq <= self.acked) {
                self.log.pop_front();
            }
        }
    }

    /// Accept a spliced chain layout from the controller.
    fn on_config(&mut self, epoch: u32, members: &[u32], ctx: &mut Context<'_, NetLockMsg>) {
        if epoch <= self.epoch {
            return;
        }
        let was_tail = self.is_tail();
        let old_succ = self.successor();
        self.epoch = epoch;
        self.chain = members.iter().map(|&m| NodeId(m)).collect();
        self.stats.splices += 1;
        if self.position().is_none() {
            // Spliced out while alive (declared dead by the detector):
            // go passive. State is kept but never consulted again.
            return;
        }
        let new_succ = self.successor();
        if self.replay_disabled {
            return;
        }
        if let Some(succ) = new_succ {
            if old_succ != Some(succ) {
                // Replay the in-flight window: everything applied here
                // that the tail has not acknowledged. The new successor
                // ignores what it already has (seq dedupe) and fills
                // whatever died with the old link.
                for entry in &self.log {
                    ctx.send_after(
                        succ,
                        NetLockMsg::ChainOp {
                            partition: self.cfg.partition,
                            seq: entry.seq,
                            stamp_ns: entry.stamp_ns,
                            op: Box::new(entry.op.clone()),
                        },
                        self.cfg.traversal,
                    );
                    self.stats.replayed += 1;
                }
            }
        }
        if self.is_tail() && !was_tail {
            // Promoted to tail: the dead tail may have died before
            // emitting some applied outputs. Re-emit everything
            // unacknowledged — exact duplicates are deduped by the
            // client (issue-stamp match), lost ones become visible for
            // the first time. This is the tail-ack guarantee.
            let entries: Vec<LogEntry> = self.log.iter().cloned().collect();
            for entry in &entries {
                self.emit(entry, ctx);
                self.stats.reemitted += 1;
            }
            self.send_acks(ctx);
        }
    }

    /// Wipe and rejoin as a sole-member chain after a full-chain loss.
    fn on_reset(&mut self, epoch: u32, ctx: &mut Context<'_, NetLockMsg>) {
        if epoch <= self.epoch {
            return;
        }
        self.epoch = epoch;
        self.dp.reset();
        control::apply_allocation(&mut self.dp, &self.program);
        self.chain = vec![self.me];
        self.last_applied = 0;
        self.acked = 0;
        self.pending.clear();
        self.log.clear();
        self.granted_outstanding.clear();
        // One lease of grace (plus a tick of slack): pre-crash holders
        // may still be inside their leases.
        self.grace_until_ns =
            ctx.now().as_nanos() + self.cfg.lease.as_nanos() + self.cfg.control_tick.as_nanos();
        self.stats.resets += 1;
        // The crash killed the timer chain; restart it.
        ctx.set_timer(self.cfg.control_tick, TIMER_CHAIN_TICK);
    }

    fn chain_tick(&mut self, ctx: &mut Context<'_, NetLockMsg>) {
        if self.position().is_some() {
            ctx.send_after(
                self.cfg.controller,
                NetLockMsg::CtrlChainPing {
                    partition: self.cfg.partition,
                    member: self.cfg.member,
                    epoch: self.epoch,
                },
                self.cfg.traversal,
            );
            // Lease sweep is a head duty: expiries become ordinary
            // replicated ops, so every member's queues agree.
            if self.is_head() && !self.cfg.lease.is_zero() {
                let expired = control::expired_leases(
                    &self.dp,
                    ctx.now().as_nanos(),
                    self.cfg.lease.as_nanos(),
                );
                for rel in expired {
                    if !self.release_authorized(rel.lock, rel.txn) {
                        continue;
                    }
                    self.stats.lease_expirations += 1;
                    self.admit(NetLockMsg::Release(rel), ctx);
                }
            }
        }
        ctx.set_timer(self.cfg.control_tick, TIMER_CHAIN_TICK);
    }
}

impl Node<NetLockMsg> for ReplSwitch {
    fn on_start(&mut self, ctx: &mut Context<'_, NetLockMsg>) {
        ctx.set_timer(self.cfg.control_tick, TIMER_CHAIN_TICK);
    }

    fn on_packet(&mut self, pkt: Packet<NetLockMsg>, ctx: &mut Context<'_, NetLockMsg>) {
        match pkt.payload {
            op @ (NetLockMsg::Acquire(_) | NetLockMsg::Release(_)) => {
                if !self.is_head() {
                    // Stale partition map (head moved) or passive
                    // member: drop, the retry re-resolves the route.
                    self.stats.misrouted += 1;
                    return;
                }
                self.admit(op, ctx);
            }
            NetLockMsg::ChainOp {
                partition,
                seq,
                stamp_ns,
                op,
            } if partition == self.cfg.partition && self.position().is_some() => {
                self.ingest(seq, stamp_ns, *op, ctx);
            }
            NetLockMsg::ChainAck { partition, seq } if partition == self.cfg.partition => {
                self.on_ack(seq);
            }
            // Controller probe (it thinks we may be back from the
            // dead): answer with a liveness ping.
            NetLockMsg::CtrlChainPing { partition, .. } if partition == self.cfg.partition => {
                ctx.send_after(
                    self.cfg.controller,
                    NetLockMsg::CtrlChainPing {
                        partition: self.cfg.partition,
                        member: self.cfg.member,
                        epoch: self.epoch,
                    },
                    self.cfg.traversal,
                );
            }
            NetLockMsg::CtrlChainConfig {
                partition,
                epoch,
                members,
            } if partition == self.cfg.partition => {
                self.on_config(epoch, &members, ctx);
            }
            NetLockMsg::CtrlChainReset { partition, epoch } if partition == self.cfg.partition => {
                self.on_reset(epoch, ctx);
            }
            // Grants and the rest route by destination; a chain member
            // is never that destination.
            _ => {}
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_, NetLockMsg>) {
        if token == TIMER_CHAIN_TICK {
            self.chain_tick(ctx);
        }
    }

    fn name(&self) -> &str {
        "repl-switch"
    }
}

/// Per-partition bookkeeping inside the controller.
#[derive(Clone, Debug)]
struct PartitionState {
    /// The chain as originally deployed, head first.
    members: Vec<NodeId>,
    /// Liveness per original member index.
    alive: Vec<bool>,
    /// Stamp of the last ping per original member index.
    last_ping_ns: Vec<u64>,
    /// Current chain epoch.
    epoch: u32,
}

impl PartitionState {
    fn live_chain(&self) -> Vec<NodeId> {
        self.members
            .iter()
            .zip(&self.alive)
            .filter(|(_, &a)| a)
            .map(|(&m, _)| m)
            .collect()
    }
}

/// Controller counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct ControllerStats {
    /// Members declared dead by the missed-tick detector.
    pub deaths_detected: u64,
    /// Chain reconfigurations issued.
    pub splices: u64,
    /// Sole-survivor resets issued.
    pub resets: u64,
    /// Partition-map broadcasts sent (per client message).
    pub map_broadcasts: u64,
}

/// Configuration of the [`ChainController`].
#[derive(Clone, Debug)]
pub struct ControllerConfig {
    /// Failure-detector polling interval.
    pub tick: SimDuration,
    /// Silence after which a member is declared dead. Must comfortably
    /// exceed the member tick plus network latency; three member ticks
    /// is the deployed default.
    pub dead_after: SimDuration,
    /// Send latency of control messages.
    pub traversal: SimDuration,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            tick: SimDuration::from_millis(1),
            dead_after: SimDuration::from_millis(3),
            traversal: SimDuration::from_nanos(500),
        }
    }
}

/// The chain-repair control plane (one per cluster, like the paper's
/// lock-management controller): collects liveness pings, splices
/// chains around dead members, resets sole survivors, and re-routes
/// clients when a head moves. It deliberately holds *no* lock state —
/// repair decisions are made purely from membership, which keeps the
/// decision auditable (the *Paxos made switch-y* argument).
pub struct ChainController {
    cfg: ControllerConfig,
    partitions: Vec<PartitionState>,
    /// Every client that routes by partition map.
    clients: Vec<NodeId>,
    /// Current head per partition (broadcast state).
    heads: Vec<NodeId>,
    map_version: u32,
    stats: ControllerStats,
}

impl ChainController {
    /// Build a controller over `chains[p]` = partition `p`'s original
    /// chain (head first). `clients` receive partition-map updates.
    pub fn new(cfg: ControllerConfig, chains: Vec<Vec<NodeId>>, clients: Vec<NodeId>) -> Self {
        assert!(!chains.is_empty(), "controller needs at least one chain");
        let heads = chains.iter().map(|c| c[0]).collect();
        let partitions = chains
            .into_iter()
            .map(|members| {
                let n = members.len();
                PartitionState {
                    members,
                    alive: vec![true; n],
                    last_ping_ns: vec![0; n],
                    epoch: 0,
                }
            })
            .collect();
        ChainController {
            cfg,
            partitions,
            clients,
            heads,
            map_version: 0,
            stats: ControllerStats::default(),
        }
    }

    /// Controller counters.
    pub fn stats(&self) -> ControllerStats {
        self.stats
    }

    /// Current head node per partition.
    pub fn heads(&self) -> &[NodeId] {
        &self.heads
    }

    /// Broadcast the routing map to every client.
    fn broadcast_map(&mut self, ctx: &mut Context<'_, NetLockMsg>) {
        self.map_version += 1;
        let msg = NetLockMsg::CtrlPartitionMap {
            version: self.map_version,
            heads: self.heads.iter().map(|h| h.0).collect(),
        };
        for &c in &self.clients {
            self.stats.map_broadcasts += 1;
            ctx.send_after(c, msg.clone(), self.cfg.traversal);
        }
    }

    fn on_ping(&mut self, partition: u16, member: u16, ctx: &mut Context<'_, NetLockMsg>) {
        let now = ctx.now().as_nanos();
        let Some(p) = self.partitions.get_mut(partition as usize) else {
            return;
        };
        let m = member as usize;
        if m >= p.members.len() {
            return;
        }
        p.last_ping_ns[m] = now;
        if p.alive[m] {
            return;
        }
        // A declared-dead member is talking again.
        if p.alive.iter().any(|&a| a) {
            // The chain got repaired without it; it stays retired
            // (state transfer back into a live chain is out of scope —
            // the chain simply runs shorter).
            return;
        }
        // Sole survivor of a fully-dead partition: reset it to an
        // empty, freshly programmed chain of one and re-route clients.
        p.alive[m] = true;
        p.epoch += 1;
        self.stats.resets += 1;
        let epoch = p.epoch;
        let node = p.members[m];
        ctx.send_after(
            node,
            NetLockMsg::CtrlChainReset { partition, epoch },
            self.cfg.traversal,
        );
        self.heads[partition as usize] = node;
        self.broadcast_map(ctx);
    }

    fn detector_tick(&mut self, ctx: &mut Context<'_, NetLockMsg>) {
        let now = ctx.now().as_nanos();
        let dead_after = self.cfg.dead_after.as_nanos();
        let mut heads_changed = false;
        for pi in 0..self.partitions.len() {
            let p = &mut self.partitions[pi];
            let mut changed = false;
            for m in 0..p.members.len() {
                if p.alive[m] && now.saturating_sub(p.last_ping_ns[m]) > dead_after {
                    p.alive[m] = false;
                    changed = true;
                    self.stats.deaths_detected += 1;
                }
            }
            if changed {
                let live = p.live_chain();
                if !live.is_empty() {
                    p.epoch += 1;
                    self.stats.splices += 1;
                    let epoch = p.epoch;
                    let wire: Box<[u32]> = live.iter().map(|n| n.0).collect();
                    for &member in &live {
                        ctx.send_after(
                            member,
                            NetLockMsg::CtrlChainConfig {
                                partition: pi as u16,
                                epoch,
                                members: wire.clone(),
                            },
                            self.cfg.traversal,
                        );
                    }
                    if self.heads[pi] != live[0] {
                        self.heads[pi] = live[0];
                        heads_changed = true;
                    }
                }
                // A fully-dead partition waits for a member to return;
                // clients keep retrying into the void until then.
            }
            // Probe fully-dead partitions so a revived member (whose
            // own timer chain died with it) gets a reason to speak.
            let p = &self.partitions[pi];
            if p.alive.iter().all(|&a| !a) {
                for (m, &node) in p.members.iter().enumerate() {
                    ctx.send_after(
                        node,
                        NetLockMsg::CtrlChainPing {
                            partition: pi as u16,
                            member: m as u16,
                            epoch: p.epoch,
                        },
                        self.cfg.traversal,
                    );
                }
            }
        }
        if heads_changed {
            self.broadcast_map(ctx);
        }
        ctx.set_timer(self.cfg.tick, TIMER_CONTROLLER_TICK);
    }
}

impl Node<NetLockMsg> for ChainController {
    fn on_start(&mut self, ctx: &mut Context<'_, NetLockMsg>) {
        // Treat deployment time as one fresh ping everywhere: the
        // detector starts counting silence from t=0.
        ctx.set_timer(self.cfg.tick, TIMER_CONTROLLER_TICK);
    }

    fn on_packet(&mut self, pkt: Packet<NetLockMsg>, ctx: &mut Context<'_, NetLockMsg>) {
        if let NetLockMsg::CtrlChainPing {
            partition, member, ..
        } = pkt.payload
        {
            self.on_ping(partition, member, ctx);
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_, NetLockMsg>) {
        if token == TIMER_CONTROLLER_TICK {
            self.detector_tick(ctx);
        }
    }

    fn name(&self) -> &str {
        "chain-controller"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::{apply_allocation, knapsack_allocate, LockStats};
    use crate::shared_queue::SharedQueueLayout;
    use netlock_proto::{ClientAddr, LockMode, LockRequest, Priority, ReleaseRequest, TenantId};
    use netlock_sim::{SimTime, Simulator};

    struct Sink(Vec<NetLockMsg>);
    impl Node<NetLockMsg> for Sink {
        fn on_packet(&mut self, pkt: Packet<NetLockMsg>, _ctx: &mut Context<'_, NetLockMsg>) {
            self.0.push(pkt.payload);
        }
        fn on_timer(&mut self, _t: u64, _c: &mut Context<'_, NetLockMsg>) {}
    }

    fn acquire(lock: u32, txn: u64, client: u32, at: u64) -> NetLockMsg {
        NetLockMsg::Acquire(LockRequest {
            lock: LockId(lock),
            mode: LockMode::Exclusive,
            txn: TxnId(txn),
            client: ClientAddr(client),
            tenant: TenantId(0),
            priority: Priority(0),
            issued_at_ns: at,
        })
    }

    fn release(lock: u32, txn: u64, client: u32) -> NetLockMsg {
        NetLockMsg::Release(ReleaseRequest {
            lock: LockId(lock),
            txn: TxnId(txn),
            mode: LockMode::Exclusive,
            client: ClientAddr(client),
            priority: Priority(0),
        })
    }

    fn program() -> (DataPlane, Allocation) {
        let mut dp = DataPlane::new_fcfs(&SharedQueueLayout::small(2, 64, 16));
        let stats: Vec<LockStats> = (0..4)
            .map(|l| LockStats {
                lock: LockId(l),
                rate: 1.0,
                contention: 8,
                home_server: 0,
            })
            .collect();
        let alloc = knapsack_allocate(&stats, 64);
        apply_allocation(&mut dp, &alloc);
        (dp, alloc)
    }

    /// client = node 0, controller = node 1, chain = nodes 2..2+factor.
    fn chain_setup(
        factor: usize,
        lease: SimDuration,
    ) -> (Simulator<NetLockMsg>, NodeId, NodeId, Vec<NodeId>) {
        let mut sim: Simulator<NetLockMsg> = Simulator::with_seed(7);
        let client = sim.add_node(Box::new(Sink(Vec::new())));
        let members: Vec<NodeId> = (0..factor as u32).map(|i| NodeId(2 + i)).collect();
        let controller = sim.add_node(Box::new(ChainController::new(
            ControllerConfig::default(),
            vec![members.clone()],
            vec![client],
        )));
        assert_eq!(controller, NodeId(1));
        for (i, &expect) in members.iter().enumerate() {
            let (dp, alloc) = program();
            let got = sim.add_node(Box::new(ReplSwitch::new(
                dp,
                alloc,
                ReplConfig {
                    partition: 0,
                    member: i as u16,
                    chain: members.clone(),
                    controller,
                    lease,
                    ..ReplConfig::default()
                },
            )));
            assert_eq!(got, expect);
        }
        (sim, client, controller, members)
    }

    fn grants_of(sink: &Sink) -> Vec<u64> {
        sink.0
            .iter()
            .filter_map(|m| match m {
                NetLockMsg::Grant(g) => Some(g.txn.0),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn tail_emits_and_chain_stays_identical() {
        let (mut sim, client, _ctl, members) = chain_setup(3, SimDuration::from_millis(50));
        sim.inject(client, members[0], acquire(1, 10, client.0, 0));
        sim.inject(client, members[0], acquire(2, 11, client.0, 0));
        sim.run_until(SimTime(5_000_000));
        sim.read_node::<Sink, _>(client, |s| {
            assert_eq!(grants_of(s), vec![10, 11]);
        });
        // Only the tail emitted; every member applied both ops.
        for (i, &m) in members.iter().enumerate() {
            sim.read_node::<ReplSwitch, _>(m, |r| {
                assert_eq!(r.last_applied(), 2, "member {i}");
                let expect = if i == members.len() - 1 { 2 } else { 0 };
                assert_eq!(r.stats().grants_sent, expect, "member {i}");
            });
        }
        // Tail acks propagated: upstream logs truncated.
        sim.read_node::<ReplSwitch, _>(members[0], |r| {
            assert!(r.log.is_empty(), "head log should be acked away");
        });
    }

    #[test]
    fn mid_chain_crash_replays_in_flight_window() {
        let (mut sim, client, _ctl, members) = chain_setup(3, SimDuration::from_millis(50));
        // Two ops arrive at the head at ~1.2µs; the forwarded ChainOps
        // reach the middle at ~2.9µs. Kill the middle at 2µs: the ops
        // are applied at the head but lost in flight.
        sim.inject(client, members[0], acquire(1, 10, client.0, 0));
        sim.inject(client, members[0], acquire(2, 11, client.0, 0));
        sim.run_until(SimTime(2_000));
        sim.fail_node(members[1]);
        sim.run_until(SimTime(20_000_000));
        // Detection + splice + replay must surface both grants.
        sim.read_node::<Sink, _>(client, |s| {
            assert_eq!(grants_of(s), vec![10, 11]);
        });
        sim.read_node::<ReplSwitch, _>(members[0], |r| {
            assert!(r.stats().replayed >= 2, "head must replay the window");
            assert_eq!(r.epoch(), 1);
        });
        // Chain still works end to end after the splice.
        sim.inject(client, members[0], release(1, 10, client.0));
        sim.inject(client, members[0], acquire(1, 12, client.0, 0));
        sim.run_until(SimTime(30_000_000));
        sim.read_node::<Sink, _>(client, |s| {
            assert_eq!(grants_of(s), vec![10, 11, 12]);
        });
    }

    #[test]
    fn tail_crash_promotes_and_reemits() {
        let (mut sim, client, _ctl, members) = chain_setup(2, SimDuration::from_millis(50));
        sim.inject(client, members[0], acquire(1, 10, client.0, 0));
        sim.run_until(SimTime(1_500));
        // The head has applied and forwarded; the tail dies before its
        // ChainOp arrives — the grant was never emitted.
        sim.fail_node(members[1]);
        sim.run_until(SimTime(20_000_000));
        sim.read_node::<Sink, _>(client, |s| {
            assert_eq!(grants_of(s), vec![10], "promoted tail must re-emit");
        });
        sim.read_node::<ReplSwitch, _>(members[0], |r| {
            assert!(r.stats().reemitted >= 1);
            assert!(r.is_tail() && r.is_head());
        });
    }

    #[test]
    fn head_crash_reroutes_clients() {
        let (mut sim, client, ctl, members) = chain_setup(2, SimDuration::from_millis(50));
        sim.inject(client, members[0], acquire(1, 10, client.0, 0));
        sim.run_until(SimTime(1_000_000));
        sim.fail_node(members[0]);
        sim.run_until(SimTime(20_000_000));
        // The controller moved the head and told the client.
        sim.read_node::<ChainController, _>(ctl, |c| {
            assert_eq!(c.heads(), &[members[1]]);
        });
        sim.read_node::<Sink, _>(client, |s| {
            assert!(
                s.0.iter().any(|m| matches!(
                    m,
                    NetLockMsg::CtrlPartitionMap { heads, .. } if heads[0] == members[1].0
                )),
                "client must get the new routing map"
            );
        });
        // The survivor serves as head now.
        sim.inject(client, members[1], acquire(2, 11, client.0, 0));
        sim.run_until(SimTime(30_000_000));
        sim.read_node::<Sink, _>(client, |s| {
            assert_eq!(grants_of(s), vec![10, 11]);
        });
    }

    #[test]
    fn sole_survivor_resets_with_grace() {
        let lease = SimDuration::from_millis(2);
        let (mut sim, client, _ctl, members) = chain_setup(1, lease);
        sim.inject(client, members[0], acquire(1, 10, client.0, 0));
        sim.run_until(SimTime(1_000_000));
        sim.fail_node(members[0]);
        sim.run_until(SimTime(6_000_000));
        sim.revive_node(members[0]);
        // The controller's probes find it; reset + grace follow.
        sim.run_until(SimTime(9_000_000));
        sim.read_node::<ReplSwitch, _>(members[0], |r| {
            assert_eq!(r.stats().resets, 1);
            assert_eq!(r.last_applied(), 0, "registers wiped");
        });
        // Mid-grace acquires are refused (a pre-crash lease may run).
        sim.inject(client, members[0], acquire(1, 11, client.0, 0));
        sim.run_until(SimTime(9_500_000));
        sim.read_node::<ReplSwitch, _>(members[0], |r| {
            assert!(r.stats().grace_drops >= 1);
        });
        // After the grace window service resumes from empty state.
        sim.inject(client, members[0], acquire(1, 12, client.0, 0));
        sim.run_until(SimTime(30_000_000));
        sim.read_node::<Sink, _>(client, |s| {
            assert_eq!(grants_of(s), vec![10, 12]);
        });
    }

    #[test]
    fn sabotaged_replay_loses_the_window() {
        let (mut sim, client, _ctl, members) = chain_setup(3, SimDuration::from_millis(200));
        for m in &members {
            sim.with_node::<ReplSwitch, _>(*m, |r| r.sabotage_disable_replay());
        }
        sim.inject(client, members[0], acquire(1, 10, client.0, 0));
        sim.run_until(SimTime(2_000));
        sim.fail_node(members[1]);
        sim.run_until(SimTime(20_000_000));
        // No replay: the op never reaches the tail, the grant is lost
        // (the lease is long enough that sweeping can't paper over it).
        sim.read_node::<Sink, _>(client, |s| {
            assert_eq!(grants_of(s), Vec::<u64>::new());
        });
    }
}
