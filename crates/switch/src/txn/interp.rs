//! The one-shot reference interpreter.
//!
//! Executes a [`TxnProgram`] in plain program order over `Vec<u64>`
//! register state, with no notion of pipeline stages, passes or the
//! access discipline — [`StepOp::Recirculate`] is a no-op here. This is
//! the *specification* semantics: what the transaction means. The
//! lowered executor in [`super::exec`] must produce identical register
//! state and identical emitted actions for every packet, which is
//! exactly what the differential fuzzer asserts.

use super::ir::{rmw_apply, StepOp, TxnAction, TxnProgram};

/// Interpreter state: the register arrays plus a reusable metadata
/// scratchpad.
#[derive(Clone, Debug)]
pub struct TxnInterpreter {
    arrays: Vec<Vec<u64>>,
    metas: Vec<u64>,
}

impl TxnInterpreter {
    /// Fresh state for a program: every array at its declared init.
    pub fn new(program: &TxnProgram) -> TxnInterpreter {
        TxnInterpreter {
            arrays: program
                .arrays
                .iter()
                .map(|a| vec![a.init; a.cells])
                .collect(),
            metas: vec![0; program.num_metas],
        }
    }

    /// Run one packet through the program, appending emitted actions to
    /// `out`. `fields` must have length `program.num_fields`.
    pub fn run(&mut self, program: &TxnProgram, fields: &[u64], out: &mut Vec<TxnAction>) {
        debug_assert_eq!(fields.len(), program.num_fields);
        self.metas.iter_mut().for_each(|m| *m = 0);
        for step in &program.steps {
            if let Some(g) = &step.guard {
                if !g.holds(fields, &self.metas) {
                    continue;
                }
            }
            match step.op {
                StepOp::Rmw {
                    array,
                    index,
                    cond,
                    alu,
                    value,
                    export,
                } => {
                    let arr = &mut self.arrays[array];
                    let idx = index.eval(fields, &self.metas) as usize % arr.len();
                    let cond = cond.map(|(c, v)| (c, v.eval(fields, &self.metas)));
                    let v = value.eval(fields, &self.metas);
                    let (old, new) = rmw_apply(arr[idx], cond, alu, v);
                    arr[idx] = new;
                    if let Some((m, which)) = export {
                        self.metas[m] = match which {
                            super::ir::Export::Old => old,
                            super::ir::Export::New => new,
                        };
                    }
                }
                StepOp::Compute { dst, op, a, b } => {
                    let r = op.apply(a.eval(fields, &self.metas), b.eval(fields, &self.metas));
                    self.metas[dst] = r;
                }
                StepOp::Emit { kind, a, b } => out.push(TxnAction {
                    kind,
                    a: a.eval(fields, &self.metas),
                    b: b.eval(fields, &self.metas),
                }),
                StepOp::Recirculate => {}
            }
        }
    }

    /// Snapshot every register array (for differential comparison).
    pub fn dump(&self) -> Vec<Vec<u64>> {
        self.arrays.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::super::ir::{
        AluOp, ArrayDecl, BinOp, CmpOp, Export, Operand, Pred, Step, StepOp, TxnProgram,
    };
    use super::*;

    fn counter_program() -> TxnProgram {
        // m0 = old counter; emit(1, m0, f0) when m0 < 2.
        TxnProgram {
            name: "counter",
            max_recirculations: 0,
            arrays: vec![ArrayDecl {
                name: "r0",
                cells: 2,
                bytes_per_cell: 8,
                init: 0,
            }],
            num_fields: 1,
            num_metas: 2,
            steps: vec![
                Step::new(StepOp::Rmw {
                    array: 0,
                    index: Operand::Field(0),
                    cond: None,
                    alu: AluOp::Add,
                    value: Operand::Const(1),
                    export: Some((0, Export::Old)),
                }),
                Step::new(StepOp::Compute {
                    dst: 1,
                    op: BinOp::Lt,
                    a: Operand::Meta(0),
                    b: Operand::Const(2),
                }),
                Step::guarded(
                    Pred {
                        op: CmpOp::Ne,
                        a: Operand::Meta(1),
                        b: Operand::Const(0),
                    },
                    StepOp::Emit {
                        kind: 1,
                        a: Operand::Meta(0),
                        b: Operand::Field(0),
                    },
                ),
            ],
        }
    }

    #[test]
    fn interprets_counters_guards_and_emits() {
        let p = counter_program();
        let mut it = TxnInterpreter::new(&p);
        let mut out = Vec::new();
        for _ in 0..3 {
            it.run(&p, &[0], &mut out);
        }
        // Emits fire for old values 0 and 1, not 2.
        assert_eq!(out.len(), 2);
        assert_eq!((out[0].kind, out[0].a), (1, 0));
        assert_eq!((out[1].kind, out[1].a), (1, 1));
        assert_eq!(it.dump(), vec![vec![3, 0]]);
    }

    #[test]
    fn index_wraps_modulo_cells() {
        let p = counter_program();
        let mut it = TxnInterpreter::new(&p);
        let mut out = Vec::new();
        it.run(&p, &[5], &mut out); // 5 % 2 == 1
        assert_eq!(it.dump(), vec![vec![0, 1]]);
    }

    #[test]
    fn metas_reset_per_packet() {
        let p = counter_program();
        let mut it = TxnInterpreter::new(&p);
        let mut out = Vec::new();
        it.run(&p, &[0], &mut out);
        it.run(&p, &[1], &mut out);
        // Second packet's export (old=0 at cell 1) must not see the
        // first packet's m0.
        assert_eq!(out[1].a, 0);
    }
}
