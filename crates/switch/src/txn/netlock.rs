//! The real NetLock FCFS grant path, expressed as a [`TxnProgram`].
//!
//! [`fcfs_enqueue_program`] is Algorithm 2 lines 1–5 — the same
//! conditional enqueue + grant decision that
//! [`crate::shared_queue::SharedQueue::enqueue`] hand-writes against
//! `RegisterArray` — written declaratively, one region with capacity
//! `cap`. The verifier assigns it 4 pipeline stages in a single pass,
//! matching the hand-written layout's structure (metadata counters
//! ahead of the slot array), and the differential tests assert that the
//! lowered execution agrees with `dataplane.rs` on every outcome and on
//! the final register state.
//!
//! Modelling notes, where the IR is flatter than the hand-written code:
//! - The `tail` pointer is a *monotone* counter; the circular offset is
//!   recovered as `tail mod cap` by a stateless compute. (A conditional
//!   wrap-to-zero is not a single-ALU operation, a modulo of a
//!   metadata value is.) Compare `tail mod cap` against the real
//!   queue's wrapped tail.
//! - A slot stores `mode + 1` (1 = shared, 2 = exclusive, 0 = empty)
//!   rather than a 20-byte struct; the declared cell width still
//!   charges [`crate::shared_queue::SLOT_BYTES`] so feasibility
//!   accounting matches.

use super::ir::{AluOp, ArrayDecl, BinOp, CmpOp, Export, Operand, Pred, Step, StepOp, TxnProgram};
use crate::shared_queue::SLOT_BYTES;

/// Packet field 0: 1 for an exclusive request, 0 for shared.
pub const FIELD_IS_EXCL: usize = 0;

/// Emitted when the request is enqueued and immediately granted
/// (`a` = count before enqueue, `b` = is_excl).
pub const EMIT_GRANTED: u64 = 1;
/// Emitted when the request is enqueued behind incompatible holders.
pub const EMIT_QUEUED: u64 = 2;
/// Emitted when the region is full and the request overflows to the
/// lock server.
pub const EMIT_FULL: u64 = 3;

/// Program array index of the region-capacity register.
pub const ARR_BOUNDS: usize = 0;
/// Program array index of the `r_i` arrival counter.
pub const ARR_REQ_COUNT: usize = 1;
/// Program array index of the occupancy counter.
pub const ARR_COUNT: usize = 2;
/// Program array index of the `c_i` high-water mark.
pub const ARR_MAX_COUNT: usize = 3;
/// Program array index of the monotone tail counter.
pub const ARR_TAIL: usize = 4;
/// Program array index of the queued-exclusives counter.
pub const ARR_EXCL: usize = 5;
/// Program array index of the slot array (`cap` cells).
pub const ARR_SLOTS: usize = 6;

// Metadata slot map.
const M_CAP: usize = 0; // region capacity (bounds export)
const M_COUNT_OLD: usize = 1; // occupancy before this enqueue
const M_NOT_FULL: usize = 2; // count_old < cap
const M_TAIL_OLD: usize = 3; // monotone tail before this enqueue
const M_EXCL_OLD: usize = 4; // queued exclusives before this enqueue
const M_GRANT: usize = 5; // the grant decision
const M_COUNT_NEW: usize = 6; // count_old + 1
const M_SLOT_OFF: usize = 7; // tail_old mod cap
const M_IS_EMPTY: usize = 8; // count_old == 0
const M_EXCL_ZERO: usize = 9; // excl_old == 0
const M_IS_SHARED: usize = 10; // is_excl == 0
const M_SHARED_OK: usize = 11; // excl_zero && is_shared
const M_SLOT_VAL: usize = 12; // is_excl + 1
const M_EMIT_GRANT: usize = 13; // grant && not_full
const M_NO_GRANT: usize = 14; // !grant
const M_EMIT_QUEUE: usize = 15; // !grant && not_full
const NUM_METAS: usize = 16;

fn c(v: u64) -> Operand {
    Operand::Const(v)
}

fn m(i: usize) -> Operand {
    Operand::Meta(i)
}

fn if_not_full() -> Pred {
    Pred {
        op: CmpOp::Ne,
        a: m(M_NOT_FULL),
        b: c(0),
    }
}

/// The FCFS acquire/enqueue path for one region of capacity `cap`
/// (must be ≥ 1), as a single-pass transaction.
///
/// Grant rule (Algorithm 2): `count_old == 0 || (excl_old == 0 &&
/// mode == Shared)`. Emits exactly one of [`EMIT_GRANTED`],
/// [`EMIT_QUEUED`], [`EMIT_FULL`] per packet.
pub fn fcfs_enqueue_program(cap: u32) -> TxnProgram {
    assert!(cap >= 1, "a zero-capacity region cannot enqueue");
    let f_excl = Operand::Field(FIELD_IS_EXCL);
    TxnProgram {
        name: "fcfs-enqueue",
        max_recirculations: 0,
        arrays: vec![
            ArrayDecl {
                name: "bounds",
                cells: 1,
                bytes_per_cell: 8,
                init: u64::from(cap),
            },
            ArrayDecl {
                name: "req_count",
                cells: 1,
                bytes_per_cell: 8,
                init: 0,
            },
            ArrayDecl {
                name: "count",
                cells: 1,
                bytes_per_cell: 4,
                init: 0,
            },
            ArrayDecl {
                name: "max_count",
                cells: 1,
                bytes_per_cell: 4,
                init: 0,
            },
            ArrayDecl {
                name: "tail",
                cells: 1,
                bytes_per_cell: 4,
                init: 0,
            },
            ArrayDecl {
                name: "excl",
                cells: 1,
                bytes_per_cell: 4,
                init: 0,
            },
            ArrayDecl {
                name: "slots",
                cells: cap as usize,
                bytes_per_cell: SLOT_BYTES,
                init: 0,
            },
        ],
        num_fields: 1,
        num_metas: NUM_METAS,
        steps: vec![
            // Stage 0: read the region capacity; count the arrival.
            Step::new(StepOp::Rmw {
                array: ARR_BOUNDS,
                index: c(0),
                cond: None,
                alu: AluOp::Add,
                value: c(0),
                export: Some((M_CAP, Export::Old)),
            }),
            Step::new(StepOp::Rmw {
                array: ARR_REQ_COUNT,
                index: c(0),
                cond: None,
                alu: AluOp::Add,
                value: c(1),
                export: None,
            }),
            // Stage 1: conditional occupancy increment (only if space).
            Step::new(StepOp::Rmw {
                array: ARR_COUNT,
                index: c(0),
                cond: Some((CmpOp::Lt, m(M_CAP))),
                alu: AluOp::Add,
                value: c(1),
                export: Some((M_COUNT_OLD, Export::Old)),
            }),
            // Stage 2 metadata: full test + new occupancy.
            Step::new(StepOp::Compute {
                dst: M_NOT_FULL,
                op: BinOp::Lt,
                a: m(M_COUNT_OLD),
                b: m(M_CAP),
            }),
            Step::new(StepOp::Compute {
                dst: M_COUNT_NEW,
                op: BinOp::Add,
                a: m(M_COUNT_OLD),
                b: c(1),
            }),
            // Stage 2 stateful (all skipped on the overflow path).
            Step::guarded(
                if_not_full(),
                StepOp::Rmw {
                    array: ARR_MAX_COUNT,
                    index: c(0),
                    cond: None,
                    alu: AluOp::Max,
                    value: m(M_COUNT_NEW),
                    export: None,
                },
            ),
            Step::guarded(
                if_not_full(),
                StepOp::Rmw {
                    array: ARR_TAIL,
                    index: c(0),
                    cond: None,
                    alu: AluOp::Add,
                    value: c(1),
                    export: Some((M_TAIL_OLD, Export::Old)),
                },
            ),
            Step::guarded(
                if_not_full(),
                StepOp::Rmw {
                    array: ARR_EXCL,
                    index: c(0),
                    cond: None,
                    alu: AluOp::Add,
                    value: f_excl,
                    export: Some((M_EXCL_OLD, Export::Old)),
                },
            ),
            // Stage 3 metadata: slot offset and the grant decision.
            Step::new(StepOp::Compute {
                dst: M_SLOT_OFF,
                op: BinOp::Mod,
                a: m(M_TAIL_OLD),
                b: m(M_CAP),
            }),
            Step::new(StepOp::Compute {
                dst: M_IS_EMPTY,
                op: BinOp::Eq,
                a: m(M_COUNT_OLD),
                b: c(0),
            }),
            Step::new(StepOp::Compute {
                dst: M_EXCL_ZERO,
                op: BinOp::Eq,
                a: m(M_EXCL_OLD),
                b: c(0),
            }),
            Step::new(StepOp::Compute {
                dst: M_IS_SHARED,
                op: BinOp::Eq,
                a: f_excl,
                b: c(0),
            }),
            Step::new(StepOp::Compute {
                dst: M_SHARED_OK,
                op: BinOp::And,
                a: m(M_EXCL_ZERO),
                b: m(M_IS_SHARED),
            }),
            Step::new(StepOp::Compute {
                dst: M_GRANT,
                op: BinOp::Or,
                a: m(M_IS_EMPTY),
                b: m(M_SHARED_OK),
            }),
            // Stage 3 stateful: write the slot at tail_old mod cap.
            Step::new(StepOp::Compute {
                dst: M_SLOT_VAL,
                op: BinOp::Add,
                a: f_excl,
                b: c(1),
            }),
            Step::guarded(
                if_not_full(),
                StepOp::Rmw {
                    array: ARR_SLOTS,
                    index: m(M_SLOT_OFF),
                    cond: None,
                    alu: AluOp::Write,
                    value: m(M_SLOT_VAL),
                    export: None,
                },
            ),
            // Exactly one emit fires per packet.
            Step::new(StepOp::Compute {
                dst: M_EMIT_GRANT,
                op: BinOp::And,
                a: m(M_GRANT),
                b: m(M_NOT_FULL),
            }),
            Step::guarded(
                Pred {
                    op: CmpOp::Ne,
                    a: m(M_EMIT_GRANT),
                    b: c(0),
                },
                StepOp::Emit {
                    kind: EMIT_GRANTED,
                    a: m(M_COUNT_OLD),
                    b: f_excl,
                },
            ),
            Step::new(StepOp::Compute {
                dst: M_NO_GRANT,
                op: BinOp::Eq,
                a: m(M_GRANT),
                b: c(0),
            }),
            Step::new(StepOp::Compute {
                dst: M_EMIT_QUEUE,
                op: BinOp::And,
                a: m(M_NO_GRANT),
                b: m(M_NOT_FULL),
            }),
            Step::guarded(
                Pred {
                    op: CmpOp::Ne,
                    a: m(M_EMIT_QUEUE),
                    b: c(0),
                },
                StepOp::Emit {
                    kind: EMIT_QUEUED,
                    a: m(M_COUNT_OLD),
                    b: f_excl,
                },
            ),
            Step::guarded(
                Pred {
                    op: CmpOp::Eq,
                    a: m(M_NOT_FULL),
                    b: c(0),
                },
                StepOp::Emit {
                    kind: EMIT_FULL,
                    a: m(M_COUNT_OLD),
                    b: f_excl,
                },
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::super::exec::LoweredTxn;
    use super::*;
    use crate::analysis::layout::TofinoBudget;
    use crate::txn::ir::TxnAction;
    use crate::txn::verify::verify;

    fn compile(cap: u32) -> LoweredTxn {
        LoweredTxn::compile(
            fcfs_enqueue_program(cap),
            &TofinoBudget::tofino_single_direction(),
        )
        .expect("the grant path must fit half a Tofino")
    }

    #[test]
    fn fits_single_direction_in_four_stages_one_pass() {
        let v = verify(
            fcfs_enqueue_program(8),
            &TofinoBudget::tofino_single_direction(),
        )
        .unwrap();
        assert_eq!(v.passes(), 1, "the acquire path never recirculates");
        assert_eq!(v.layout().occupied_stages(), 4);
        assert_eq!(v.array_stage(ARR_BOUNDS), Some(0));
        assert_eq!(v.array_stage(ARR_COUNT), Some(1));
        assert_eq!(v.array_stage(ARR_EXCL), Some(2));
        assert_eq!(v.array_stage(ARR_SLOTS), Some(3));
        let map = v.stage_map().to_string();
        assert!(map.contains("'slots'"), "{map}");
    }

    #[test]
    fn grant_rule_matches_algorithm_2() {
        let mut t = compile(4);
        let mut out = Vec::new();
        let run = |t: &mut LoweredTxn, excl: u64, out: &mut Vec<TxnAction>| {
            out.clear();
            t.run(&[excl], out);
            assert_eq!(out.len(), 1, "exactly one outcome per packet");
            out[0].kind
        };
        // Empty queue grants either mode.
        assert_eq!(run(&mut t, 1, &mut out), EMIT_GRANTED);
        // Exclusive holder blocks everyone.
        assert_eq!(run(&mut t, 0, &mut out), EMIT_QUEUED);
        assert_eq!(run(&mut t, 1, &mut out), EMIT_QUEUED);
        // Fourth fills the region; fifth overflows.
        assert_eq!(run(&mut t, 0, &mut out), EMIT_QUEUED);
        assert_eq!(run(&mut t, 0, &mut out), EMIT_FULL);
        // All-shared queues grant shared requests.
        let mut s = compile(4);
        assert_eq!(run(&mut s, 0, &mut out), EMIT_GRANTED);
        assert_eq!(run(&mut s, 0, &mut out), EMIT_GRANTED);
        assert_eq!(run(&mut s, 1, &mut out), EMIT_QUEUED);
    }

    #[test]
    fn overflow_leaves_state_untouched_except_req_count() {
        let mut t = compile(1);
        let mut out = Vec::new();
        t.run(&[1], &mut out);
        let before = t.dump();
        t.run(&[0], &mut out); // full
        let after = t.dump();
        assert_eq!(out[1].kind, EMIT_FULL);
        for i in 0..before.len() {
            if i == ARR_REQ_COUNT {
                assert_eq!(after[i][0], before[i][0] + 1);
            } else {
                assert_eq!(after[i], before[i], "array {i} mutated on overflow");
            }
        }
    }
}
