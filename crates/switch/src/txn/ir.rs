//! The packet-transaction IR.
//!
//! A [`TxnProgram`] is a straight-line list of guarded steps describing
//! what one packet does to the switch's register arrays: stateful
//! read-modify-writes ([`StepOp::Rmw`]), stateless metadata computation
//! ([`StepOp::Compute`]), packet actions ([`StepOp::Emit`]) and explicit
//! pipeline recirculation ([`StepOp::Recirculate`]). The program is
//! *declarative*: it names arrays and data flow but assigns no pipeline
//! stages — stage assignment is the job of the static verifier in
//! [`super::verify`], and the same program can be executed either by the
//! one-shot interpreter ([`super::interp`]) or by the lowered
//! stage-by-stage executor ([`super::exec`]). The two must agree; the
//! differential fuzzer in `switch/tests/fuzz_txn_differential.rs` checks
//! that they do.
//!
//! Value model: every register cell, packet field and metadata slot is a
//! `u64`. Arithmetic wraps; comparisons yield `0`/`1`; `x % 0` is
//! defined as `0` so no program can fault on a modulo. Register indices
//! wrap modulo the array length, so a well-formed program can never
//! access out of bounds in either executor.

use std::fmt;

/// A value source: a literal, a packet header field, or a metadata slot.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Operand {
    /// A literal constant.
    Const(u64),
    /// Packet header field `fields[i]` (read-only, set by the packet).
    Field(usize),
    /// Metadata slot `metas[i]` (zeroed per packet, carried across
    /// recirculations, written by [`StepOp::Compute`] and RMW exports).
    Meta(usize),
}

impl Operand {
    /// Evaluate against a packet's fields and metadata.
    #[inline]
    pub fn eval(self, fields: &[u64], metas: &[u64]) -> u64 {
        match self {
            Operand::Const(v) => v,
            Operand::Field(i) => fields[i],
            Operand::Meta(i) => metas[i],
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Const(v) => write!(f, "c{v}"),
            Operand::Field(i) => write!(f, "f{i}"),
            Operand::Meta(i) => write!(f, "m{i}"),
        }
    }
}

/// A comparison operator (used by guards and RMW conditions).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    /// `a == b`
    Eq,
    /// `a != b`
    Ne,
    /// `a < b`
    Lt,
    /// `a <= b`
    Le,
    /// `a > b`
    Gt,
    /// `a >= b`
    Ge,
}

impl CmpOp {
    /// Apply the comparison.
    #[inline]
    pub fn holds(self, a: u64, b: u64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// The corpus-format mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }
}

/// A step guard: the step executes only when the predicate holds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Pred {
    /// The comparison.
    pub op: CmpOp,
    /// Left operand.
    pub a: Operand,
    /// Right operand.
    pub b: Operand,
}

impl Pred {
    /// Evaluate the predicate for a packet.
    #[inline]
    pub fn holds(&self, fields: &[u64], metas: &[u64]) -> bool {
        self.op
            .holds(self.a.eval(fields, metas), self.b.eval(fields, metas))
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.op.mnemonic(), self.a, self.b)
    }
}

/// The update a stateful ALU applies to a register cell.
///
/// This is the Tofino stateful-ALU instruction set as the model needs
/// it: one read-modify-write per array per pass, computing the new cell
/// value from the old value and one input operand.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AluOp {
    /// `cell = v`
    Write,
    /// `cell = cell + v` (wrapping)
    Add,
    /// `cell = cell - v` (wrapping)
    Sub,
    /// `cell = max(cell, v)`
    Max,
    /// `cell = min(cell, v)`
    Min,
}

impl AluOp {
    /// Compute the post-update cell value.
    #[inline]
    pub fn apply(self, old: u64, v: u64) -> u64 {
        match self {
            AluOp::Write => v,
            AluOp::Add => old.wrapping_add(v),
            AluOp::Sub => old.wrapping_sub(v),
            AluOp::Max => old.max(v),
            AluOp::Min => old.min(v),
        }
    }

    /// The corpus-format mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Write => "write",
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Max => "max",
            AluOp::Min => "min",
        }
    }
}

/// A stateless two-operand metadata computation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// `(a == b) as u64`
    Eq,
    /// `(a != b) as u64`
    Ne,
    /// `(a < b) as u64`
    Lt,
    /// `a % b`, with `a % 0 == 0`.
    Mod,
}

impl BinOp {
    /// Apply the operation.
    #[inline]
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Eq => (a == b) as u64,
            BinOp::Ne => (a != b) as u64,
            BinOp::Lt => (a < b) as u64,
            BinOp::Mod => {
                if b == 0 {
                    0
                } else {
                    a % b
                }
            }
        }
    }

    /// The corpus-format mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Eq => "eq",
            BinOp::Ne => "ne",
            BinOp::Lt => "lt",
            BinOp::Mod => "mod",
        }
    }
}

/// Which value of a read-modify-write is exported into metadata.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Export {
    /// The pre-update cell value (what Tofino's stateful ALU exports).
    Old,
    /// The post-update cell value.
    New,
}

/// Declaration of one register array the program uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ArrayDecl {
    /// Display name (must have `'static` lifetime to flow into
    /// [`crate::register::RegisterArray`] and the access trace).
    pub name: &'static str,
    /// Number of cells (must be > 0).
    pub cells: usize,
    /// On-chip bytes per cell, for SRAM accounting.
    pub bytes_per_cell: usize,
    /// Initial cell value (models control-plane pre-configuration, e.g.
    /// region bounds written over PCIe before traffic arrives).
    pub init: u64,
}

/// The operation a step performs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepOp {
    /// One stateful read-modify-write of a register array.
    Rmw {
        /// Index into [`TxnProgram::arrays`].
        array: usize,
        /// Cell index, reduced modulo the array length.
        index: Operand,
        /// Optional update condition: the ALU writes the new value only
        /// when `cmp(old_cell_value, operand)` holds (e.g. the shared
        /// queue's conditional count increment `old < cap`). The old
        /// value is still read and exportable either way.
        cond: Option<(CmpOp, Operand)>,
        /// The update applied when the condition holds.
        alu: AluOp,
        /// The ALU input operand.
        value: Operand,
        /// Export the old or new cell value into `metas[slot]`.
        export: Option<(usize, Export)>,
    },
    /// A stateless metadata computation `metas[dst] = op(a, b)`.
    Compute {
        /// Destination metadata slot.
        dst: usize,
        /// The operation.
        op: BinOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// Emit a packet action (grant, forward, notify — the transaction's
    /// externally visible output).
    Emit {
        /// Action kind tag (program-defined, e.g. "granted"/"queued").
        kind: u64,
        /// First payload operand.
        a: Operand,
        /// Second payload operand.
        b: Operand,
    },
    /// End the current pipeline pass and continue in a resubmitted one.
    /// Must be unguarded (a data-dependent recirculation would make the
    /// stage assignment of every later step ambiguous).
    Recirculate,
}

/// One guarded step of a transaction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Step {
    /// Optional guard; the step only executes when it holds.
    pub guard: Option<Pred>,
    /// The operation.
    pub op: StepOp,
}

impl Step {
    /// An unguarded step.
    pub fn new(op: StepOp) -> Step {
        Step { guard: None, op }
    }

    /// A guarded step.
    pub fn guarded(guard: Pred, op: StepOp) -> Step {
        Step {
            guard: Some(guard),
            op,
        }
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(g) = &self.guard {
            write!(f, "[{g}] ")?;
        }
        match &self.op {
            StepOp::Rmw {
                array,
                index,
                cond,
                alu,
                value,
                export,
            } => {
                write!(f, "rmw a{array}[{index}] {} {value}", alu.mnemonic())?;
                if let Some((cmp, v)) = cond {
                    write!(f, " if-old {} {v}", cmp.mnemonic())?;
                }
                if let Some((m, e)) = export {
                    let which = match e {
                        Export::Old => "old",
                        Export::New => "new",
                    };
                    write!(f, " -> m{m}:{which}")?;
                }
                Ok(())
            }
            StepOp::Compute { dst, op, a, b } => {
                write!(f, "m{dst} = {} {a} {b}", op.mnemonic())
            }
            StepOp::Emit { kind, a, b } => write!(f, "emit k{kind} {a} {b}"),
            StepOp::Recirculate => write!(f, "recirculate"),
        }
    }
}

/// An emitted packet action: the externally visible output of a
/// transaction, compared verbatim by the differential fuzzer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TxnAction {
    /// The emitting step's kind tag.
    pub kind: u64,
    /// First payload value.
    pub a: u64,
    /// Second payload value.
    pub b: u64,
}

/// A validation error from [`TxnProgram::validate`]: a structurally
/// ill-formed program (dangling references, zero-size arrays).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IrError {
    /// A step references an array index outside [`TxnProgram::arrays`].
    ArrayOutOfRange {
        /// The offending step index.
        step: usize,
        /// The referenced array index.
        array: usize,
    },
    /// An array is declared with zero cells.
    EmptyArray {
        /// The offending array index.
        array: usize,
    },
    /// An operand or export references a field/meta slot out of range.
    SlotOutOfRange {
        /// The offending step index.
        step: usize,
    },
    /// A [`StepOp::Recirculate`] step carries a guard.
    GuardedRecirculate {
        /// The offending step index.
        step: usize,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::ArrayOutOfRange { step, array } => {
                write!(f, "step {step} references undeclared array a{array}")
            }
            IrError::EmptyArray { array } => write!(f, "array a{array} has zero cells"),
            IrError::SlotOutOfRange { step } => {
                write!(f, "step {step} references a field/meta slot out of range")
            }
            IrError::GuardedRecirculate { step } => {
                write!(f, "step {step}: recirculate must be unguarded")
            }
        }
    }
}

impl std::error::Error for IrError {}

/// A complete packet transaction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TxnProgram {
    /// Display name.
    pub name: &'static str,
    /// Declared worst-case recirculations per packet; the verifier
    /// rejects programs whose static [`StepOp::Recirculate`] count
    /// exceeds it.
    pub max_recirculations: u32,
    /// The register arrays the program owns.
    pub arrays: Vec<ArrayDecl>,
    /// Number of packet header fields the program reads.
    pub num_fields: usize,
    /// Number of metadata slots the program uses.
    pub num_metas: usize,
    /// The steps, in program order.
    pub steps: Vec<Step>,
}

impl TxnProgram {
    /// Check structural well-formedness: every array/field/meta
    /// reference in range, no zero-cell arrays, no guarded recirculate.
    pub fn validate(&self) -> Result<(), IrError> {
        for (i, a) in self.arrays.iter().enumerate() {
            if a.cells == 0 {
                return Err(IrError::EmptyArray { array: i });
            }
        }
        let slot_ok = |op: Operand| match op {
            Operand::Const(_) => true,
            Operand::Field(i) => i < self.num_fields,
            Operand::Meta(i) => i < self.num_metas,
        };
        for (si, step) in self.steps.iter().enumerate() {
            if let Some(g) = &step.guard {
                if matches!(step.op, StepOp::Recirculate) {
                    return Err(IrError::GuardedRecirculate { step: si });
                }
                if !slot_ok(g.a) || !slot_ok(g.b) {
                    return Err(IrError::SlotOutOfRange { step: si });
                }
            }
            match &step.op {
                StepOp::Rmw {
                    array,
                    index,
                    cond,
                    value,
                    export,
                    ..
                } => {
                    if *array >= self.arrays.len() {
                        return Err(IrError::ArrayOutOfRange {
                            step: si,
                            array: *array,
                        });
                    }
                    if !slot_ok(*index) || !slot_ok(*value) {
                        return Err(IrError::SlotOutOfRange { step: si });
                    }
                    if let Some((_, v)) = cond {
                        if !slot_ok(*v) {
                            return Err(IrError::SlotOutOfRange { step: si });
                        }
                    }
                    if let Some((m, _)) = export {
                        if *m >= self.num_metas {
                            return Err(IrError::SlotOutOfRange { step: si });
                        }
                    }
                }
                StepOp::Compute { dst, a, b, .. } => {
                    if *dst >= self.num_metas || !slot_ok(*a) || !slot_ok(*b) {
                        return Err(IrError::SlotOutOfRange { step: si });
                    }
                }
                StepOp::Emit { a, b, .. } => {
                    if !slot_ok(*a) || !slot_ok(*b) {
                        return Err(IrError::SlotOutOfRange { step: si });
                    }
                }
                StepOp::Recirculate => {}
            }
        }
        Ok(())
    }

    /// Static count of [`StepOp::Recirculate`] steps (the number of
    /// resubmits every packet performs; recirculation is unconditional).
    pub fn recirculations(&self) -> u32 {
        self.steps
            .iter()
            .filter(|s| matches!(s.op, StepOp::Recirculate))
            .count() as u32
    }
}

/// Apply one read-modify-write to a cell value, shared by both
/// executors so their ALU semantics cannot drift apart. Returns
/// `(old, new)`; the caller stores `new` back and exports per the
/// step's [`Export`] selector.
#[inline]
pub fn rmw_apply(old: u64, cond: Option<(CmpOp, u64)>, alu: AluOp, value: u64) -> (u64, u64) {
    let update = match cond {
        None => true,
        Some((cmp, v)) => cmp.holds(old, v),
    };
    let new = if update { alu.apply(old, value) } else { old };
    (old, new)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TxnProgram {
        TxnProgram {
            name: "tiny",
            max_recirculations: 0,
            arrays: vec![ArrayDecl {
                name: "r0",
                cells: 4,
                bytes_per_cell: 4,
                init: 0,
            }],
            num_fields: 1,
            num_metas: 2,
            steps: vec![Step::new(StepOp::Rmw {
                array: 0,
                index: Operand::Field(0),
                cond: None,
                alu: AluOp::Add,
                value: Operand::Const(1),
                export: Some((0, Export::Old)),
            })],
        }
    }

    #[test]
    fn valid_program_validates() {
        assert_eq!(tiny().validate(), Ok(()));
    }

    #[test]
    fn dangling_array_rejected() {
        let mut p = tiny();
        p.steps.push(Step::new(StepOp::Rmw {
            array: 3,
            index: Operand::Const(0),
            cond: None,
            alu: AluOp::Write,
            value: Operand::Const(0),
            export: None,
        }));
        assert!(matches!(
            p.validate(),
            Err(IrError::ArrayOutOfRange { step: 1, array: 3 })
        ));
    }

    #[test]
    fn oob_meta_rejected() {
        let mut p = tiny();
        p.steps.push(Step::new(StepOp::Compute {
            dst: 9,
            op: BinOp::Add,
            a: Operand::Const(0),
            b: Operand::Const(0),
        }));
        assert!(matches!(
            p.validate(),
            Err(IrError::SlotOutOfRange { step: 1 })
        ));
    }

    #[test]
    fn guarded_recirculate_rejected() {
        let mut p = tiny();
        p.steps.push(Step::guarded(
            Pred {
                op: CmpOp::Eq,
                a: Operand::Const(0),
                b: Operand::Const(0),
            },
            StepOp::Recirculate,
        ));
        assert!(matches!(
            p.validate(),
            Err(IrError::GuardedRecirculate { step: 1 })
        ));
    }

    #[test]
    fn zero_cell_array_rejected() {
        let mut p = tiny();
        p.arrays[0].cells = 0;
        assert!(matches!(
            p.validate(),
            Err(IrError::EmptyArray { array: 0 })
        ));
    }

    #[test]
    fn alu_and_binop_semantics() {
        assert_eq!(AluOp::Write.apply(7, 3), 3);
        assert_eq!(AluOp::Add.apply(u64::MAX, 1), 0, "wrapping");
        assert_eq!(AluOp::Sub.apply(0, 1), u64::MAX, "wrapping");
        assert_eq!(AluOp::Max.apply(2, 9), 9);
        assert_eq!(AluOp::Min.apply(2, 9), 2);
        assert_eq!(BinOp::Mod.apply(10, 0), 0, "mod-zero is defined");
        assert_eq!(BinOp::Mod.apply(10, 3), 1);
        assert_eq!(BinOp::Lt.apply(1, 2), 1);
        assert_eq!(BinOp::Eq.apply(2, 2), 1);
    }

    #[test]
    fn conditional_rmw_skips_update_but_reads() {
        // old = 5, cond old < 3 fails: cell unchanged, old still read.
        let (old, new) = rmw_apply(5, Some((CmpOp::Lt, 3)), AluOp::Add, 1);
        assert_eq!((old, new), (5, 5));
        let (old, new) = rmw_apply(2, Some((CmpOp::Lt, 3)), AluOp::Add, 1);
        assert_eq!((old, new), (2, 3));
    }

    #[test]
    fn step_display_is_compact() {
        let s = Step::guarded(
            Pred {
                op: CmpOp::Ne,
                a: Operand::Meta(2),
                b: Operand::Const(0),
            },
            StepOp::Rmw {
                array: 1,
                index: Operand::Meta(7),
                cond: Some((CmpOp::Lt, Operand::Meta(0))),
                alu: AluOp::Add,
                value: Operand::Const(1),
                export: Some((3, Export::Old)),
            },
        );
        assert_eq!(
            s.to_string(),
            "[ne m2 c0] rmw a1[m7] add c1 if-old lt m0 -> m3:old"
        );
    }
}
