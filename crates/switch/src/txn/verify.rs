//! Static lowering verifier: def-use analysis, stage assignment, and
//! Tofino feasibility for [`TxnProgram`]s.
//!
//! [`verify`] walks the program in order, building the def-use graph
//! implicitly as *readiness stages*: a packet field is ready at stage 0,
//! a metadata slot becomes ready at the stage where it is defined (one
//! stage after a stateful export — Tofino's stateful ALU result reaches
//! the PHV in the next stage; same-stage for stateless computes, which
//! the compiler replicates freely). Each stateful step is assigned the
//! earliest stage satisfying:
//!
//! 1. **Single access per array per pass** — a second RMW of an array
//!    within one pass is rejected ([`VerifyError::ReadAfterWrite`]): the
//!    hardware would need a recirculation the program did not declare.
//! 2. **Ascending stage order** — an array's stage is fixed at its
//!    first access; a later access whose operands are not ready by that
//!    stage is rejected ([`VerifyError::StageConflict`]), because the
//!    pipeline cannot revisit an earlier stage.
//! 3. **Bounded recirculation** — the static
//!    [`super::ir::StepOp::Recirculate`] count must not exceed the
//!    program's declared `max_recirculations`
//!    ([`VerifyError::RecirculationBound`]).
//!
//! The accepted assignment is then validated twice against the existing
//! analysis machinery as ground truth: a synthetic access trace through
//! [`check_discipline`] (the same checker the exhaustive explorer
//! uses), and a lowered [`ProgramLayout`] checked against a
//! [`TofinoBudget`] (stage count, per-stage SRAM, resubmit bound). The
//! result is a [`VerifiedTxn`], which the stage-by-stage executor in
//! [`super::exec`] runs and whose [`VerifiedTxn::stage_map`] renders
//! the human-readable stage-map report.

use std::fmt;

use crate::analysis::layout::{ArrayDescriptor, FeasibilityError, ProgramLayout, TofinoBudget};
use crate::analysis::trace::{check_discipline, AccessRecord, DisciplineViolation};
use crate::register::{ArrayId, PassId};

use super::ir::{IrError, Operand, StepOp, TxnProgram};

/// A stage-assignment rejection from the verifier proper.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VerifyError {
    /// An array is accessed twice within one pass: the read of the
    /// second access would observe the write of the first inside a
    /// single stage, which the hardware cannot do — it needs a
    /// recirculation.
    ReadAfterWrite {
        /// Name of the twice-accessed array.
        array: &'static str,
        /// The pass (0-based; pass `n` runs at resubmit depth `n`).
        pass: u32,
        /// The offending step index.
        step: usize,
    },
    /// An array whose stage was fixed by an earlier access is accessed
    /// again with operands that only become ready at a later stage; the
    /// pipeline cannot go backwards to reach it.
    StageConflict {
        /// Name of the conflicted array.
        array: &'static str,
        /// The offending step index.
        step: usize,
        /// The array's fixed stage.
        fixed_stage: usize,
        /// The earliest stage the access's operands allow.
        required_stage: usize,
    },
    /// The program performs more recirculations than it declares.
    RecirculationBound {
        /// Static recirculate-step count.
        used: u32,
        /// The program's declared `max_recirculations`.
        declared: u32,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::ReadAfterWrite { array, pass, step } => write!(
                f,
                "ReadAfterWrite: array '{array}' accessed twice in pass {pass} \
                 (step {step}); a second stateful access needs a recirculation"
            ),
            VerifyError::StageConflict {
                array,
                step,
                fixed_stage,
                required_stage,
            } => write!(
                f,
                "StageConflict: array '{array}' is fixed at stage {fixed_stage} but \
                 step {step} needs it at stage {required_stage} or later"
            ),
            VerifyError::RecirculationBound { used, declared } => write!(
                f,
                "RecirculationBound: program recirculates {used} times but declares \
                 at most {declared}"
            ),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Any way a program can fail verification or lowering.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TxnError {
    /// Structurally ill-formed IR.
    Ir(IrError),
    /// Stage assignment rejected the program.
    Verify(VerifyError),
    /// The accepted assignment failed the ground-truth trace check —
    /// an internal inconsistency between the verifier and
    /// [`check_discipline`]; never expected to surface.
    Discipline(DisciplineViolation),
    /// The lowered layout does not fit the Tofino budget.
    Feasibility(FeasibilityError),
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::Ir(e) => write!(f, "ir: {e}"),
            TxnError::Verify(e) => write!(f, "verify: {e}"),
            TxnError::Discipline(e) => write!(f, "discipline (internal): {e}"),
            TxnError::Feasibility(e) => write!(f, "feasibility: {e}"),
        }
    }
}

impl std::error::Error for TxnError {}

impl From<IrError> for TxnError {
    fn from(e: IrError) -> TxnError {
        TxnError::Ir(e)
    }
}

impl From<VerifyError> for TxnError {
    fn from(e: VerifyError) -> TxnError {
        TxnError::Verify(e)
    }
}

/// Where one step landed: which pass, and which stage within it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct StepPlace {
    /// Pass index (0 = original traversal; `n` = resubmit depth `n`).
    pub pass: u32,
    /// Assigned pipeline stage within the pass.
    pub stage: usize,
}

/// A verified, stage-assigned, budget-checked transaction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VerifiedTxn {
    program: TxnProgram,
    /// Stage per program array; `None` if the program never accesses it.
    array_stages: Vec<Option<usize>>,
    step_places: Vec<StepPlace>,
    layout: ProgramLayout,
}

impl VerifiedTxn {
    /// The verified program.
    pub fn program(&self) -> &TxnProgram {
        &self.program
    }

    /// The stage assigned to array `i` (`None` = never accessed).
    pub fn array_stage(&self, i: usize) -> Option<usize> {
        self.array_stages[i]
    }

    /// Pass/stage placement of every step, in program order.
    pub fn step_places(&self) -> &[StepPlace] {
        &self.step_places
    }

    /// Pipeline passes per packet (1 + recirculations).
    pub fn passes(&self) -> u32 {
        self.program.recirculations() + 1
    }

    /// The lowered resource layout (feeds the existing
    /// [`crate::analysis::layout::ResourceReport`] machinery).
    pub fn layout(&self) -> &ProgramLayout {
        &self.layout
    }

    /// The human-readable stage-map report.
    pub fn stage_map(&self) -> StageMap<'_> {
        StageMap { txn: self }
    }
}

/// Renderable stage map: every step at its assigned pass and stage,
/// with array placements. Rendered via `Display`.
#[derive(Clone, Copy, Debug)]
pub struct StageMap<'a> {
    txn: &'a VerifiedTxn,
}

impl fmt::Display for StageMap<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = self.txn;
        let p = &t.program;
        writeln!(
            f,
            "stage map: txn '{}', {} arrays over {} stages, {} pass(es), {} B SRAM",
            p.name,
            p.arrays.len(),
            t.layout.occupied_stages(),
            t.passes(),
            t.layout.total_bytes(),
        )?;
        for (i, a) in p.arrays.iter().enumerate() {
            match t.array_stages[i] {
                Some(s) => writeln!(
                    f,
                    "  array a{i} '{}': stage {s}, {} x {} B",
                    a.name, a.cells, a.bytes_per_cell
                )?,
                None => writeln!(f, "  array a{i} '{}': never accessed", a.name)?,
            }
        }
        let mut pass = u32::MAX;
        for (si, step) in p.steps.iter().enumerate() {
            let place = t.step_places[si];
            if place.pass != pass {
                pass = place.pass;
                writeln!(f, "pass {pass} (resubmit depth {pass}):")?;
            }
            writeln!(f, "  stage {:>2}  {}", place.stage, step)?;
        }
        Ok(())
    }
}

/// Verify a program and lower it against a budget.
///
/// Runs, in order: IR validation, recirculation-bound check, def-use
/// stage assignment (rejecting [`VerifyError::ReadAfterWrite`] and
/// [`VerifyError::StageConflict`]), the synthetic-trace ground-truth
/// check through [`check_discipline`], and the [`ProgramLayout`] budget
/// check. Returns the full assignment on success.
pub fn verify(program: TxnProgram, budget: &TofinoBudget) -> Result<VerifiedTxn, TxnError> {
    program.validate()?;
    let used = program.recirculations();
    if used > program.max_recirculations {
        return Err(VerifyError::RecirculationBound {
            used,
            declared: program.max_recirculations,
        }
        .into());
    }

    let mut array_stages: Vec<Option<usize>> = vec![None; program.arrays.len()];
    let mut meta_ready: Vec<usize> = vec![0; program.num_metas];
    let mut accessed: Vec<bool> = vec![false; program.arrays.len()];
    let mut step_places: Vec<StepPlace> = Vec::with_capacity(program.steps.len());
    let mut pass: u32 = 0;
    let mut cursor: usize = 0;

    let ready = |op: Operand, meta_ready: &[usize]| -> usize {
        match op {
            Operand::Const(_) | Operand::Field(_) => 0,
            Operand::Meta(m) => meta_ready[m],
        }
    };

    for (si, step) in program.steps.iter().enumerate() {
        let guard_ready = step
            .guard
            .map_or(0, |g| ready(g.a, &meta_ready).max(ready(g.b, &meta_ready)));
        match step.op {
            StepOp::Rmw {
                array,
                index,
                cond,
                value,
                export,
                ..
            } => {
                if accessed[array] {
                    return Err(VerifyError::ReadAfterWrite {
                        array: program.arrays[array].name,
                        pass,
                        step: si,
                    }
                    .into());
                }
                let mut required = cursor
                    .max(guard_ready)
                    .max(ready(index, &meta_ready))
                    .max(ready(value, &meta_ready));
                if let Some((_, v)) = cond {
                    required = required.max(ready(v, &meta_ready));
                }
                let stage = match array_stages[array] {
                    None => {
                        array_stages[array] = Some(required);
                        required
                    }
                    Some(fixed) => {
                        if fixed < required {
                            return Err(VerifyError::StageConflict {
                                array: program.arrays[array].name,
                                step: si,
                                fixed_stage: fixed,
                                required_stage: required,
                            }
                            .into());
                        }
                        fixed
                    }
                };
                accessed[array] = true;
                cursor = stage;
                if let Some((m, _)) = export {
                    // Stateful-ALU exports land in the PHV for the
                    // *next* stage.
                    meta_ready[m] = stage + 1;
                }
                step_places.push(StepPlace { pass, stage });
            }
            StepOp::Compute { dst, a, b, .. } => {
                let cs = guard_ready
                    .max(ready(a, &meta_ready))
                    .max(ready(b, &meta_ready));
                meta_ready[dst] = cs;
                step_places.push(StepPlace { pass, stage: cs });
            }
            StepOp::Emit { a, b, .. } => {
                let es = guard_ready
                    .max(ready(a, &meta_ready))
                    .max(ready(b, &meta_ready));
                step_places.push(StepPlace { pass, stage: es });
            }
            StepOp::Recirculate => {
                step_places.push(StepPlace {
                    pass,
                    stage: cursor,
                });
                pass += 1;
                cursor = 0;
                accessed.iter_mut().for_each(|a| *a = false);
                meta_ready.iter_mut().for_each(|m| *m = 0);
            }
        }
    }

    // Ground truth 1: replay the assignment as a synthetic access trace
    // through the same checker the exhaustive explorer trusts. Every
    // guard is assumed true (the worst case: a skipped access can only
    // relax the discipline, never tighten it).
    let mut records: Vec<AccessRecord> = Vec::new();
    for (si, step) in program.steps.iter().enumerate() {
        if let StepOp::Rmw { array, .. } = step.op {
            let place = step_places[si];
            records.push(AccessRecord {
                array: ArrayId(array as u32),
                name: program.arrays[array].name,
                stage: place.stage,
                index: 0,
                pass: PassId(u64::from(place.pass) + 1),
                resubmit_depth: place.pass,
            });
        }
    }
    check_discipline(&records, program.max_recirculations).map_err(TxnError::Discipline)?;

    // Ground truth 2: lower into the existing resource model and check
    // the Tofino budget.
    let mut layout = ProgramLayout::new();
    for (i, a) in program.arrays.iter().enumerate() {
        if let Some(stage) = array_stages[i] {
            layout.register(ArrayDescriptor {
                name: a.name,
                stage,
                cells: a.cells,
                bytes_per_cell: a.bytes_per_cell,
            });
        }
    }
    layout.declare_resubmit_bound(program.max_recirculations);
    layout.check(budget).map_err(TxnError::Feasibility)?;

    Ok(VerifiedTxn {
        program,
        array_stages,
        step_places,
        layout,
    })
}

#[cfg(test)]
mod tests {
    use super::super::ir::{AluOp, ArrayDecl, BinOp, CmpOp, Export, Operand, Pred, Step, StepOp};
    use super::*;

    fn arr(name: &'static str, cells: usize) -> ArrayDecl {
        ArrayDecl {
            name,
            cells,
            bytes_per_cell: 4,
            init: 0,
        }
    }

    fn rmw(array: usize) -> Step {
        Step::new(StepOp::Rmw {
            array,
            index: Operand::Const(0),
            cond: None,
            alu: AluOp::Add,
            value: Operand::Const(1),
            export: None,
        })
    }

    fn budget() -> TofinoBudget {
        TofinoBudget::tofino_single_direction()
    }

    /// Seeded-bad program 1: read-after-write of one array in one pass.
    #[test]
    fn raw_in_stage_is_rejected() {
        let p = TxnProgram {
            name: "raw",
            max_recirculations: 0,
            arrays: vec![arr("dup", 2)],
            num_fields: 1,
            num_metas: 1,
            steps: vec![rmw(0), rmw(0)],
        };
        let err = verify(p, &budget()).unwrap_err();
        assert!(
            matches!(
                err,
                TxnError::Verify(VerifyError::ReadAfterWrite {
                    array: "dup",
                    pass: 0,
                    step: 1
                })
            ),
            "got {err}"
        );
        assert!(err.to_string().contains("ReadAfterWrite"), "{err}");
    }

    /// Seeded-bad program 2: per-stage SRAM budget overflow.
    #[test]
    fn sram_budget_overflow_is_rejected() {
        let b = budget();
        let p = TxnProgram {
            name: "hog",
            max_recirculations: 0,
            arrays: vec![ArrayDecl {
                name: "hog",
                cells: b.sram_per_stage_bytes + 1,
                bytes_per_cell: 1,
                init: 0,
            }],
            num_fields: 1,
            num_metas: 1,
            steps: vec![rmw(0)],
        };
        let err = verify(p, &b).unwrap_err();
        assert!(
            matches!(
                err,
                TxnError::Feasibility(FeasibilityError::SramBudgetExceeded { stage: 0, .. })
            ),
            "got {err}"
        );
    }

    /// Seeded-bad program 3: more recirculations than declared.
    #[test]
    fn recirculation_bound_violation_is_rejected() {
        let p = TxnProgram {
            name: "spin",
            max_recirculations: 1,
            arrays: vec![arr("a", 1), arr("b", 1)],
            num_fields: 1,
            num_metas: 1,
            steps: vec![
                rmw(0),
                Step::new(StepOp::Recirculate),
                rmw(1),
                Step::new(StepOp::Recirculate),
                rmw(0),
            ],
        };
        let err = verify(p, &budget()).unwrap_err();
        assert!(
            matches!(
                err,
                TxnError::Verify(VerifyError::RecirculationBound {
                    used: 2,
                    declared: 1
                })
            ),
            "got {err}"
        );
    }

    /// Seeded-bad program 4: a fixed-stage array needed later than its
    /// stage allows in a second pass.
    #[test]
    fn cross_pass_stage_conflict_is_rejected() {
        let p = TxnProgram {
            name: "conflict",
            max_recirculations: 1,
            arrays: vec![arr("early", 1), arr("feed", 1)],
            num_fields: 1,
            num_metas: 1,
            steps: vec![
                // Pass 0: 'early' fixed at stage 0.
                rmw(0),
                Step::new(StepOp::Recirculate),
                // Pass 1: 'feed' at stage 0 exports m0 (ready stage 1);
                // then 'early' needs m0 => required stage 1 > fixed 0.
                Step::new(StepOp::Rmw {
                    array: 1,
                    index: Operand::Const(0),
                    cond: None,
                    alu: AluOp::Add,
                    value: Operand::Const(1),
                    export: Some((0, Export::Old)),
                }),
                Step::new(StepOp::Rmw {
                    array: 0,
                    index: Operand::Const(0),
                    cond: None,
                    alu: AluOp::Add,
                    value: Operand::Meta(0),
                    export: None,
                }),
            ],
        };
        let err = verify(p, &budget()).unwrap_err();
        assert!(
            matches!(
                err,
                TxnError::Verify(VerifyError::StageConflict {
                    array: "early",
                    fixed_stage: 0,
                    required_stage: 1,
                    ..
                })
            ),
            "got {err}"
        );
    }

    /// Stage-count overflow: a dependency chain longer than the budget's
    /// stages, each link forced one stage later by a stateful export.
    #[test]
    fn stage_budget_overflow_is_rejected() {
        let b = budget();
        let n = b.stages + 1;
        let names: &[&'static str] = &[
            "c00", "c01", "c02", "c03", "c04", "c05", "c06", "c07", "c08", "c09", "c10", "c11",
            "c12", "c13", "c14", "c15",
        ];
        assert!(n <= names.len(), "test assumes a small budget");
        let arrays: Vec<ArrayDecl> = (0..n).map(|i| arr(names[i], 1)).collect();
        let steps: Vec<Step> = (0..n)
            .map(|i| {
                Step::new(StepOp::Rmw {
                    array: i,
                    index: Operand::Const(0),
                    cond: None,
                    alu: AluOp::Add,
                    value: if i == 0 {
                        Operand::Const(1)
                    } else {
                        Operand::Meta(0)
                    },
                    export: Some((0, Export::Old)),
                })
            })
            .collect();
        let p = TxnProgram {
            name: "chain",
            max_recirculations: 0,
            arrays,
            num_fields: 1,
            num_metas: 1,
            steps,
        };
        let err = verify(p, &b).unwrap_err();
        assert!(
            matches!(
                err,
                TxnError::Feasibility(FeasibilityError::StageBudgetExceeded { .. })
            ),
            "got {err}"
        );
    }

    #[test]
    fn recirculation_resets_access_and_readiness() {
        let p = TxnProgram {
            name: "two-pass",
            max_recirculations: 1,
            arrays: vec![arr("a", 1)],
            num_fields: 1,
            num_metas: 1,
            steps: vec![rmw(0), Step::new(StepOp::Recirculate), rmw(0)],
        };
        let v = verify(p, &budget()).expect("re-access after recirc is legal");
        assert_eq!(v.passes(), 2);
        assert_eq!(v.step_places()[0], StepPlace { pass: 0, stage: 0 });
        assert_eq!(v.step_places()[2], StepPlace { pass: 1, stage: 0 });
    }

    #[test]
    fn export_pushes_consumers_one_stage_later() {
        let p = TxnProgram {
            name: "dep",
            max_recirculations: 0,
            arrays: vec![arr("src", 1), arr("dst", 1)],
            num_fields: 1,
            num_metas: 2,
            steps: vec![
                Step::new(StepOp::Rmw {
                    array: 0,
                    index: Operand::Const(0),
                    cond: None,
                    alu: AluOp::Add,
                    value: Operand::Const(1),
                    export: Some((0, Export::Old)),
                }),
                // Stateless combine at the export's ready stage.
                Step::new(StepOp::Compute {
                    dst: 1,
                    op: BinOp::Add,
                    a: Operand::Meta(0),
                    b: Operand::Const(1),
                }),
                Step::new(StepOp::Rmw {
                    array: 1,
                    index: Operand::Const(0),
                    cond: None,
                    alu: AluOp::Write,
                    value: Operand::Meta(1),
                    export: None,
                }),
            ],
        };
        let v = verify(p, &budget()).unwrap();
        assert_eq!(v.array_stage(0), Some(0));
        assert_eq!(v.array_stage(1), Some(1), "consumer lands one stage later");
        assert_eq!(v.layout().occupied_stages(), 2);
    }

    #[test]
    fn guard_operands_constrain_stage() {
        let p = TxnProgram {
            name: "guarded",
            max_recirculations: 0,
            arrays: vec![arr("src", 1), arr("dst", 1)],
            num_fields: 1,
            num_metas: 1,
            steps: vec![
                Step::new(StepOp::Rmw {
                    array: 0,
                    index: Operand::Const(0),
                    cond: None,
                    alu: AluOp::Add,
                    value: Operand::Const(1),
                    export: Some((0, Export::New)),
                }),
                Step::guarded(
                    Pred {
                        op: CmpOp::Ne,
                        a: Operand::Meta(0),
                        b: Operand::Const(0),
                    },
                    StepOp::Rmw {
                        array: 1,
                        index: Operand::Const(0),
                        cond: None,
                        alu: AluOp::Add,
                        value: Operand::Const(1),
                        export: None,
                    },
                ),
            ],
        };
        let v = verify(p, &budget()).unwrap();
        assert_eq!(v.array_stage(1), Some(1), "guard forces the later stage");
    }

    #[test]
    fn stage_map_report_names_passes_stages_and_arrays() {
        let p = TxnProgram {
            name: "mapped",
            max_recirculations: 1,
            arrays: vec![arr("alpha", 2), arr("beta", 2), arr("unused", 2)],
            num_fields: 1,
            num_metas: 1,
            steps: vec![rmw(0), Step::new(StepOp::Recirculate), rmw(1)],
        };
        let v = verify(p, &budget()).unwrap();
        let map = v.stage_map().to_string();
        assert!(map.contains("txn 'mapped'"), "{map}");
        assert!(map.contains("array a0 'alpha': stage 0"), "{map}");
        assert!(map.contains("array a2 'unused': never accessed"), "{map}");
        assert!(map.contains("pass 0 (resubmit depth 0):"), "{map}");
        assert!(map.contains("pass 1 (resubmit depth 1):"), "{map}");
        assert!(map.contains("recirculate"), "{map}");
    }

    #[test]
    fn ir_errors_surface_as_txn_errors() {
        let p = TxnProgram {
            name: "bad-ir",
            max_recirculations: 0,
            arrays: vec![],
            num_fields: 0,
            num_metas: 0,
            steps: vec![rmw(0)],
        };
        assert!(matches!(
            verify(p, &budget()),
            Err(TxnError::Ir(IrError::ArrayOutOfRange { .. }))
        ));
    }
}
