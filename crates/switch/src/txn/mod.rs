//! Packet transactions: a declarative IR for the NetLock data plane,
//! statically verified and lowered onto pipeline stages.
//!
//! The engines in this crate hand-write their lock logic directly
//! against [`crate::register::RegisterArray`], which means every new
//! policy must re-prove stage discipline and Tofino feasibility by
//! hand. This module provides the *Packet Transactions* abstraction
//! instead: a [`ir::TxnProgram`] declares what one packet does —
//! guarded read/compute/write steps over named register arrays, packet
//! fields and metadata — and the static verifier does the proving:
//!
//! * [`ir`] — the transaction IR and its value semantics
//! * [`interp`] — the one-shot reference interpreter (the spec)
//! * [`verify`] — def-use analysis, stage assignment, and feasibility
//!   checking against [`crate::analysis::layout::TofinoBudget`], with
//!   [`crate::analysis::trace::check_discipline`] as ground truth;
//!   emits the human-readable stage-map report
//! * [`exec`] — the lowered stage-by-stage executor, running verified
//!   programs over real [`crate::register::RegisterArray`]s
//! * [`netlock`] — the real FCFS grant path expressed as a transaction
//! * [`gen`] — seeded random program/packet generation for fuzzing
//! * [`corpus`] — plain-text (de)serialization for the regression
//!   corpus in `crates/switch/tests/corpus/`
//!
//! Trust comes from differential testing ("Testing Compilers for
//! Programmable Switches", PAPERS.md): the fuzzer in
//! `switch/tests/fuzz_txn_differential.rs` runs random programs through
//! both executors and asserts identical register state and emitted
//! actions, and the [`netlock`] program is differential-tested against
//! the hand-written [`crate::shared_queue::SharedQueue`] path.

#![deny(missing_docs)]

pub mod corpus;
pub mod exec;
pub mod gen;
pub mod interp;
pub mod ir;
pub mod netlock;
pub mod verify;

pub use exec::LoweredTxn;
pub use interp::TxnInterpreter;
pub use ir::{TxnAction, TxnProgram};
pub use verify::{verify, StageMap, TxnError, VerifiedTxn, VerifyError};
