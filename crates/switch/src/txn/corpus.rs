//! Plain-text serialization of fuzzer findings for the regression
//! corpus under `crates/switch/tests/corpus/`.
//!
//! The format is a line-per-item token stream, chosen so a finding can
//! be pasted into a bug report and read without tooling:
//!
//! ```text
//! # free-form comments
//! txn recirc 1 fields 2 metas 4
//! array cells 4 width 8 init 0
//! step rmw 0 f0 add c1 export 0 old
//! step guard ne m0 c0 compute 1 add m0 f1
//! step emit 2 m1 f0
//! step recirc
//! packet 0 1
//! expect ok
//! ```
//!
//! Operands are `c<lit>` / `f<field>` / `m<meta>`; mnemonics are the
//! same ones [`super::ir`] types print. `expect` records what the
//! verifier must do: `ok`, or `reject <kind>` naming the rejection
//! class. Array names are reconstituted from the fixed
//! [`super::gen::array_name`] table, so serialize→parse round-trips
//! generated programs exactly.

use super::gen::{array_name, MAX_ARRAYS};
use super::ir::{AluOp, ArrayDecl, BinOp, CmpOp, Export, Operand, Pred, Step, StepOp, TxnProgram};
use super::verify::{TxnError, VerifyError};

/// What the verifier is expected to do with a corpus program.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CorpusExpect {
    /// Verification succeeds; the differential check must hold on the
    /// recorded packets.
    Ok,
    /// Verification fails with the given rejection class.
    Reject(RejectKind),
}

/// The rejection classes a corpus entry can pin.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RejectKind {
    /// [`VerifyError::ReadAfterWrite`]
    ReadAfterWrite,
    /// [`VerifyError::StageConflict`]
    StageConflict,
    /// [`VerifyError::RecirculationBound`]
    RecirculationBound,
    /// [`TxnError::Feasibility`]
    Feasibility,
    /// [`TxnError::Ir`]
    Ir,
}

impl RejectKind {
    /// The corpus-format token.
    pub fn token(self) -> &'static str {
        match self {
            RejectKind::ReadAfterWrite => "read-after-write",
            RejectKind::StageConflict => "stage-conflict",
            RejectKind::RecirculationBound => "recirculation-bound",
            RejectKind::Feasibility => "feasibility",
            RejectKind::Ir => "ir",
        }
    }

    /// Classify a verifier error.
    pub fn of(err: &TxnError) -> RejectKind {
        match err {
            TxnError::Verify(VerifyError::ReadAfterWrite { .. }) => RejectKind::ReadAfterWrite,
            TxnError::Verify(VerifyError::StageConflict { .. }) => RejectKind::StageConflict,
            TxnError::Verify(VerifyError::RecirculationBound { .. }) => {
                RejectKind::RecirculationBound
            }
            TxnError::Feasibility(_) => RejectKind::Feasibility,
            TxnError::Ir(_) => RejectKind::Ir,
            // The internal self-check never classifies; fold it into
            // feasibility so a corpus entry could still pin it.
            TxnError::Discipline(_) => RejectKind::Feasibility,
        }
    }

    fn parse(tok: &str) -> Result<RejectKind, String> {
        Ok(match tok {
            "read-after-write" => RejectKind::ReadAfterWrite,
            "stage-conflict" => RejectKind::StageConflict,
            "recirculation-bound" => RejectKind::RecirculationBound,
            "feasibility" => RejectKind::Feasibility,
            "ir" => RejectKind::Ir,
            other => return Err(format!("unknown reject kind '{other}'")),
        })
    }
}

/// One parsed corpus file: a program, its packets, and the expectation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CorpusEntry {
    /// The program under test.
    pub program: TxnProgram,
    /// Packet field vectors to replay (may be empty for reject cases).
    pub packets: Vec<Vec<u64>>,
    /// The pinned verifier behavior.
    pub expect: CorpusExpect,
}

/// Serialize a program + packets + expectation to corpus text.
pub fn to_text(program: &TxnProgram, packets: &[Vec<u64>], expect: CorpusExpect) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(
        out,
        "txn recirc {} fields {} metas {}",
        program.max_recirculations, program.num_fields, program.num_metas
    )
    .unwrap();
    for a in &program.arrays {
        writeln!(
            out,
            "array cells {} width {} init {}",
            a.cells, a.bytes_per_cell, a.init
        )
        .unwrap();
    }
    for step in &program.steps {
        out.push_str("step ");
        if let Some(g) = &step.guard {
            write!(out, "guard {} {} {} ", g.op.mnemonic(), g.a, g.b).unwrap();
        }
        match &step.op {
            StepOp::Rmw {
                array,
                index,
                cond,
                alu,
                value,
                export,
            } => {
                write!(out, "rmw {array} {index} {} {value}", alu.mnemonic()).unwrap();
                if let Some((cmp, v)) = cond {
                    write!(out, " cond {} {v}", cmp.mnemonic()).unwrap();
                }
                if let Some((m, e)) = export {
                    let which = match e {
                        Export::Old => "old",
                        Export::New => "new",
                    };
                    write!(out, " export {m} {which}").unwrap();
                }
            }
            StepOp::Compute { dst, op, a, b } => {
                write!(out, "compute {dst} {} {a} {b}", op.mnemonic()).unwrap();
            }
            StepOp::Emit { kind, a, b } => {
                write!(out, "emit {kind} {a} {b}").unwrap();
            }
            StepOp::Recirculate => out.push_str("recirc"),
        }
        out.push('\n');
    }
    for pkt in packets {
        out.push_str("packet");
        for v in pkt {
            write!(out, " {v}").unwrap();
        }
        out.push('\n');
    }
    match expect {
        CorpusExpect::Ok => out.push_str("expect ok\n"),
        CorpusExpect::Reject(kind) => {
            writeln!(out, "expect reject {}", kind.token()).unwrap();
        }
    }
    out
}

struct Tokens<'a> {
    toks: std::str::SplitWhitespace<'a>,
    line: usize,
}

impl<'a> Tokens<'a> {
    fn next(&mut self) -> Result<&'a str, String> {
        self.toks
            .next()
            .ok_or_else(|| format!("line {}: unexpected end of line", self.line))
    }

    fn usize(&mut self) -> Result<usize, String> {
        let t = self.next()?;
        t.parse()
            .map_err(|_| format!("line {}: expected integer, got '{t}'", self.line))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let t = self.next()?;
        t.parse()
            .map_err(|_| format!("line {}: expected integer, got '{t}'", self.line))
    }

    fn keyword(&mut self, kw: &str) -> Result<(), String> {
        let t = self.next()?;
        if t == kw {
            Ok(())
        } else {
            Err(format!("line {}: expected '{kw}', got '{t}'", self.line))
        }
    }

    fn operand(&mut self) -> Result<Operand, String> {
        let t = self.next()?;
        let (tag, rest) = t.split_at(1);
        let n: u64 = rest
            .parse()
            .map_err(|_| format!("line {}: bad operand '{t}'", self.line))?;
        Ok(match tag {
            "c" => Operand::Const(n),
            "f" => Operand::Field(n as usize),
            "m" => Operand::Meta(n as usize),
            _ => return Err(format!("line {}: bad operand '{t}'", self.line)),
        })
    }

    fn cmp(&mut self) -> Result<CmpOp, String> {
        let t = self.next()?;
        Ok(match t {
            "eq" => CmpOp::Eq,
            "ne" => CmpOp::Ne,
            "lt" => CmpOp::Lt,
            "le" => CmpOp::Le,
            "gt" => CmpOp::Gt,
            "ge" => CmpOp::Ge,
            _ => return Err(format!("line {}: unknown comparison '{t}'", self.line)),
        })
    }

    fn alu(&mut self) -> Result<AluOp, String> {
        let t = self.next()?;
        Ok(match t {
            "write" => AluOp::Write,
            "add" => AluOp::Add,
            "sub" => AluOp::Sub,
            "max" => AluOp::Max,
            "min" => AluOp::Min,
            _ => return Err(format!("line {}: unknown ALU op '{t}'", self.line)),
        })
    }

    fn binop(&mut self) -> Result<BinOp, String> {
        let t = self.next()?;
        Ok(match t {
            "add" => BinOp::Add,
            "sub" => BinOp::Sub,
            "min" => BinOp::Min,
            "max" => BinOp::Max,
            "and" => BinOp::And,
            "or" => BinOp::Or,
            "xor" => BinOp::Xor,
            "eq" => BinOp::Eq,
            "ne" => BinOp::Ne,
            "lt" => BinOp::Lt,
            "mod" => BinOp::Mod,
            _ => return Err(format!("line {}: unknown binop '{t}'", self.line)),
        })
    }
}

/// Parse corpus text into a [`CorpusEntry`].
pub fn parse(text: &str) -> Result<CorpusEntry, String> {
    let mut header: Option<(u32, usize, usize)> = None;
    let mut arrays: Vec<ArrayDecl> = Vec::new();
    let mut steps: Vec<Step> = Vec::new();
    let mut packets: Vec<Vec<u64>> = Vec::new();
    let mut expect: Option<CorpusExpect> = None;

    for (li, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut t = Tokens {
            toks: line.split_whitespace(),
            line: li + 1,
        };
        match t.next()? {
            "txn" => {
                t.keyword("recirc")?;
                let recirc = t.u64()? as u32;
                t.keyword("fields")?;
                let fields = t.usize()?;
                t.keyword("metas")?;
                let metas = t.usize()?;
                header = Some((recirc, fields, metas));
            }
            "array" => {
                if arrays.len() >= MAX_ARRAYS {
                    return Err(format!(
                        "line {}: too many arrays (max {MAX_ARRAYS})",
                        li + 1
                    ));
                }
                t.keyword("cells")?;
                let cells = t.usize()?;
                t.keyword("width")?;
                let width = t.usize()?;
                t.keyword("init")?;
                let init = t.u64()?;
                arrays.push(ArrayDecl {
                    name: array_name(arrays.len()),
                    cells,
                    bytes_per_cell: width,
                    init,
                });
            }
            "step" => {
                let mut kw = t.next()?;
                let guard = if kw == "guard" {
                    let g = Pred {
                        op: t.cmp()?,
                        a: t.operand()?,
                        b: t.operand()?,
                    };
                    kw = t.next()?;
                    Some(g)
                } else {
                    None
                };
                let op = match kw {
                    "rmw" => {
                        let array = t.usize()?;
                        let index = t.operand()?;
                        let alu = t.alu()?;
                        let value = t.operand()?;
                        let mut cond = None;
                        let mut export = None;
                        while let Ok(extra) = t.next() {
                            match extra {
                                "cond" => cond = Some((t.cmp()?, t.operand()?)),
                                "export" => {
                                    let m = t.usize()?;
                                    let which = match t.next()? {
                                        "old" => Export::Old,
                                        "new" => Export::New,
                                        o => {
                                            return Err(format!(
                                                "line {}: expected old|new, got '{o}'",
                                                li + 1
                                            ))
                                        }
                                    };
                                    export = Some((m, which));
                                }
                                o => {
                                    return Err(format!(
                                        "line {}: unexpected token '{o}' in rmw",
                                        li + 1
                                    ))
                                }
                            }
                        }
                        StepOp::Rmw {
                            array,
                            index,
                            cond,
                            alu,
                            value,
                            export,
                        }
                    }
                    "compute" => StepOp::Compute {
                        dst: t.usize()?,
                        op: t.binop()?,
                        a: t.operand()?,
                        b: t.operand()?,
                    },
                    "emit" => StepOp::Emit {
                        kind: t.u64()?,
                        a: t.operand()?,
                        b: t.operand()?,
                    },
                    "recirc" => StepOp::Recirculate,
                    o => return Err(format!("line {}: unknown step kind '{o}'", li + 1)),
                };
                steps.push(Step { guard, op });
            }
            "packet" => {
                let mut pkt = Vec::new();
                while let Ok(tok) = t.next() {
                    pkt.push(
                        tok.parse()
                            .map_err(|_| format!("line {}: bad packet value '{tok}'", li + 1))?,
                    );
                }
                packets.push(pkt);
            }
            "expect" => {
                expect = Some(match t.next()? {
                    "ok" => CorpusExpect::Ok,
                    "reject" => CorpusExpect::Reject(RejectKind::parse(t.next()?)?),
                    o => return Err(format!("line {}: expected ok|reject, got '{o}'", li + 1)),
                });
            }
            o => return Err(format!("line {}: unknown directive '{o}'", li + 1)),
        }
    }

    let (max_recirculations, num_fields, num_metas) = header.ok_or("missing 'txn' header line")?;
    let expect = expect.ok_or("missing 'expect' line")?;
    for (i, pkt) in packets.iter().enumerate() {
        if pkt.len() != num_fields {
            return Err(format!(
                "packet {i} has {} fields, program declares {num_fields}",
                pkt.len()
            ));
        }
    }
    Ok(CorpusEntry {
        program: TxnProgram {
            name: "corpus",
            max_recirculations,
            arrays,
            num_fields,
            num_metas,
            steps,
        },
        packets,
        expect,
    })
}

#[cfg(test)]
mod tests {
    use super::super::gen;
    use super::*;

    #[test]
    fn round_trips_generated_programs() {
        for seed in 0..64u64 {
            let mut p = gen::program(seed);
            p.name = "corpus"; // parse() always names programs "corpus"
            let pkts = gen::packets(seed, p.num_fields, 4);
            let text = to_text(&p, &pkts, CorpusExpect::Ok);
            let entry = parse(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
            assert_eq!(entry.program, p, "seed {seed}");
            assert_eq!(entry.packets, pkts, "seed {seed}");
            assert_eq!(entry.expect, CorpusExpect::Ok);
        }
    }

    #[test]
    fn parses_comments_blanks_and_reject_expectations() {
        let text = "\
# a seeded-bad program
txn recirc 0 fields 1 metas 2

step rmw 0 c0 add c1
expect reject ir
";
        let entry = parse(text).unwrap();
        assert_eq!(entry.expect, CorpusExpect::Reject(RejectKind::Ir));
        assert_eq!(entry.program.steps.len(), 1);
        assert!(entry.program.arrays.is_empty());
    }

    #[test]
    fn rejects_malformed_input_with_line_numbers() {
        assert!(parse("bogus\n").unwrap_err().contains("line 1"));
        assert!(parse("txn recirc 0 fields 1 metas 1\nexpect maybe\n")
            .unwrap_err()
            .contains("line 2"));
        assert!(parse("").unwrap_err().contains("txn"));
        let arity = "txn recirc 0 fields 2 metas 1\npacket 1\nexpect ok\n";
        assert!(parse(arity).unwrap_err().contains("fields"));
    }

    #[test]
    fn reject_kind_classification_matches_tokens() {
        for kind in [
            RejectKind::ReadAfterWrite,
            RejectKind::StageConflict,
            RejectKind::RecirculationBound,
            RejectKind::Feasibility,
            RejectKind::Ir,
        ] {
            assert_eq!(RejectKind::parse(kind.token()), Ok(kind));
        }
    }
}
