//! The lowered stage-by-stage executor.
//!
//! [`LoweredTxn::compile`] runs the static verifier and then
//! materializes each accessed array as a real [`RegisterArray`] at its
//! assigned stage. [`LoweredTxn::run`] executes one packet the way the
//! pipeline would: a [`crate::register::Pass`] per traversal, a fresh
//! pass after every [`super::ir::StepOp::Recirculate`], and every
//! stateful step going through [`RegisterArray::access`] — so the
//! runtime discipline asserts (one access per array per pass, ascending
//! stages) re-check what the verifier proved statically. A trace sink
//! can be attached to collect [`crate::analysis::trace::AccessRecord`]s
//! and replay them through `check_discipline`, giving the differential
//! fuzzer a third, runtime-observed ground truth.
//!
//! The executor allocates only at compile time: `run` reuses the
//! metadata scratchpad and appends into a caller-owned action buffer,
//! preserving the zero-allocation-per-packet invariant the benches
//! gate on.

use crate::analysis::layout::TofinoBudget;
use crate::analysis::trace::TraceSink;
use crate::engine::PassAllocator;
use crate::register::RegisterArray;

use super::ir::{rmw_apply, Export, StepOp, TxnAction, TxnProgram};
use super::verify::{verify, TxnError, VerifiedTxn};

/// A compiled transaction: verified stage assignment plus live register
/// state.
#[derive(Debug)]
pub struct LoweredTxn {
    verified: VerifiedTxn,
    /// One live array per *accessed* program array, in program-array
    /// order; `slots[i]` maps program array `i` into `arrays`.
    arrays: Vec<RegisterArray<u64>>,
    slots: Vec<Option<usize>>,
    passes: PassAllocator,
    metas: Vec<u64>,
}

impl LoweredTxn {
    /// Verify `program` against `budget` and materialize its register
    /// state. All rejection paths are [`TxnError`]s from the verifier.
    pub fn compile(program: TxnProgram, budget: &TofinoBudget) -> Result<LoweredTxn, TxnError> {
        let verified = verify(program, budget)?;
        let mut arrays = Vec::new();
        let mut slots = vec![None; verified.program().arrays.len()];
        for (i, decl) in verified.program().arrays.iter().enumerate() {
            if let Some(stage) = verified.array_stage(i) {
                slots[i] = Some(arrays.len());
                arrays.push(RegisterArray::new(decl.name, stage, decl.cells, decl.init));
            }
        }
        let num_metas = verified.program().num_metas;
        Ok(LoweredTxn {
            verified,
            arrays,
            slots,
            passes: PassAllocator::new(),
            metas: vec![0; num_metas],
        })
    }

    /// The verified assignment (stage map, layout, program).
    pub fn verified(&self) -> &VerifiedTxn {
        &self.verified
    }

    /// Install (or remove) a trace sink; every subsequent pass records
    /// its register accesses into it.
    pub fn set_trace_sink(&mut self, sink: Option<TraceSink>) {
        self.passes.set_trace_sink(sink);
    }

    /// Run one packet through the lowered pipeline, appending emitted
    /// actions to `out`. Steady-state allocation-free.
    ///
    /// # Panics
    /// Panics if `fields.len() != program.num_fields`, or — which would
    /// mean a verifier bug — if a register access violates the runtime
    /// discipline.
    pub fn run(&mut self, fields: &[u64], out: &mut Vec<TxnAction>) {
        let program = self.verified.program();
        assert_eq!(fields.len(), program.num_fields, "field arity mismatch");
        self.metas.iter_mut().for_each(|m| *m = 0);
        let mut depth: u32 = 0;
        let mut pass = self.passes.begin(depth);
        for step in &program.steps {
            if let Some(g) = &step.guard {
                if !g.holds(fields, &self.metas) {
                    continue;
                }
            }
            match step.op {
                StepOp::Rmw {
                    array,
                    index,
                    cond,
                    alu,
                    value,
                    export,
                } => {
                    let slot = self.slots[array].expect("accessed arrays are materialized");
                    let arr = &mut self.arrays[slot];
                    let idx = index.eval(fields, &self.metas) as usize % arr.len();
                    let cond = cond.map(|(c, v)| (c, v.eval(fields, &self.metas)));
                    let v = value.eval(fields, &self.metas);
                    let (old, new) = arr.access(&mut pass, idx, |cell| {
                        let r = rmw_apply(*cell, cond, alu, v);
                        *cell = r.1;
                        r
                    });
                    if let Some((m, which)) = export {
                        self.metas[m] = match which {
                            Export::Old => old,
                            Export::New => new,
                        };
                    }
                }
                StepOp::Compute { dst, op, a, b } => {
                    self.metas[dst] =
                        op.apply(a.eval(fields, &self.metas), b.eval(fields, &self.metas));
                }
                StepOp::Emit { kind, a, b } => out.push(TxnAction {
                    kind,
                    a: a.eval(fields, &self.metas),
                    b: b.eval(fields, &self.metas),
                }),
                StepOp::Recirculate => {
                    depth += 1;
                    pass = self.passes.begin(depth);
                }
            }
        }
    }

    /// Snapshot every *program* array (unaccessed ones at their declared
    /// init), shape-identical to [`super::interp::TxnInterpreter::dump`].
    pub fn dump(&self) -> Vec<Vec<u64>> {
        self.verified
            .program()
            .arrays
            .iter()
            .enumerate()
            .map(|(i, decl)| match self.slots[i] {
                Some(slot) => {
                    let arr = &self.arrays[slot];
                    (0..arr.len()).map(|c| arr.cp_read(c)).collect()
                }
                None => vec![decl.init; decl.cells],
            })
            .collect()
    }

    /// Control-plane reset: refill every array with its declared init
    /// (no allocation; the bench harness uses this between batches).
    pub fn cp_reset(&mut self) {
        for (i, decl) in self.verified.program().arrays.iter().enumerate() {
            if let Some(slot) = self.slots[i] {
                self.arrays[slot].cp_fill(decl.init);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::interp::TxnInterpreter;
    use super::super::ir::{AluOp, ArrayDecl, BinOp, CmpOp, Export, Operand, Pred, Step, StepOp};
    use super::*;
    use crate::analysis::trace::{check_discipline, new_sink};

    fn program() -> TxnProgram {
        // Two-pass program exercising guards, conds, exports, computes.
        TxnProgram {
            name: "exec-smoke",
            max_recirculations: 1,
            arrays: vec![
                ArrayDecl {
                    name: "x",
                    cells: 4,
                    bytes_per_cell: 8,
                    init: 0,
                },
                ArrayDecl {
                    name: "y",
                    cells: 2,
                    bytes_per_cell: 8,
                    init: 7,
                },
            ],
            num_fields: 2,
            num_metas: 3,
            steps: vec![
                Step::new(StepOp::Rmw {
                    array: 0,
                    index: Operand::Field(0),
                    cond: Some((CmpOp::Lt, Operand::Const(3))),
                    alu: AluOp::Add,
                    value: Operand::Const(1),
                    export: Some((0, Export::Old)),
                }),
                Step::new(StepOp::Compute {
                    dst: 1,
                    op: BinOp::Add,
                    a: Operand::Meta(0),
                    b: Operand::Field(1),
                }),
                Step::guarded(
                    Pred {
                        op: CmpOp::Lt,
                        a: Operand::Meta(0),
                        b: Operand::Const(2),
                    },
                    StepOp::Emit {
                        kind: 9,
                        a: Operand::Meta(1),
                        b: Operand::Field(0),
                    },
                ),
                Step::new(StepOp::Recirculate),
                Step::new(StepOp::Rmw {
                    array: 1,
                    index: Operand::Const(0),
                    cond: None,
                    alu: AluOp::Max,
                    value: Operand::Meta(1),
                    export: None,
                }),
            ],
        }
    }

    #[test]
    fn lowered_matches_interpreter_on_a_fixed_program() {
        let p = program();
        let mut lowered = LoweredTxn::compile(p.clone(), &TofinoBudget::tofino()).unwrap();
        let mut interp = TxnInterpreter::new(&p);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for f0 in 0..6u64 {
            for f1 in 0..3u64 {
                lowered.run(&[f0, f1], &mut a);
                interp.run(&p, &[f0, f1], &mut b);
            }
        }
        assert_eq!(a, b);
        assert_eq!(lowered.dump(), interp.dump());
    }

    #[test]
    fn runtime_trace_passes_check_discipline() {
        let p = program();
        let mut lowered = LoweredTxn::compile(p, &TofinoBudget::tofino()).unwrap();
        let sink = new_sink();
        lowered.set_trace_sink(Some(sink.clone()));
        let mut out = Vec::new();
        for f0 in 0..4u64 {
            lowered.run(&[f0, 1], &mut out);
        }
        let records = sink.lock().unwrap().take();
        assert!(!records.is_empty());
        let stats = check_discipline(&records, 1).expect("runtime trace is disciplined");
        assert_eq!(stats.max_resubmit_depth, 1);
    }

    #[test]
    fn cp_reset_restores_declared_inits() {
        let p = program();
        let mut lowered = LoweredTxn::compile(p, &TofinoBudget::tofino()).unwrap();
        let mut out = Vec::new();
        lowered.run(&[0, 1], &mut out);
        lowered.cp_reset();
        assert_eq!(lowered.dump(), vec![vec![0, 0, 0, 0], vec![7, 7]]);
    }
}
