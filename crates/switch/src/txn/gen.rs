//! Seeded random [`TxnProgram`] and packet generation for the
//! differential fuzzer and the regression corpus.
//!
//! Programs are *mostly* well-formed: array/field/meta references are
//! always in range (so [`TxnProgram::validate`] passes), but a small
//! fraction deliberately re-access an array within a pass or
//! under-declare their recirculation budget, exercising the verifier's
//! rejection paths. The fuzzer runs the differential check on programs
//! the verifier accepts and asserts rejections are deterministic.
//!
//! Everything here is seeded [`SmallRng`]: the same seed always yields
//! the same program and packets, which is what lets the corpus replay
//! findings byte-for-byte.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use super::ir::{AluOp, ArrayDecl, BinOp, CmpOp, Export, Operand, Pred, Step, StepOp, TxnProgram};

/// Canonical static names for generated arrays (index `i` → `"g<i>"`).
/// [`RegisterArray`](crate::register::RegisterArray) names are
/// `&'static str`, so generated and corpus-parsed programs draw from
/// this fixed table.
pub fn array_name(i: usize) -> &'static str {
    const NAMES: [&str; 16] = [
        "g0", "g1", "g2", "g3", "g4", "g5", "g6", "g7", "g8", "g9", "g10", "g11", "g12", "g13",
        "g14", "g15",
    ];
    NAMES[i]
}

/// Largest array index [`array_name`] can label.
pub const MAX_ARRAYS: usize = 16;

const MAX_RECIRCS: u32 = 3;

fn operand(rng: &mut SmallRng, num_fields: usize, num_metas: usize) -> Operand {
    match rng.random_range(0..10u32) {
        0..=3 => Operand::Const(rng.random_range(0..8u64)),
        4..=6 => Operand::Field(rng.random_range(0..num_fields)),
        _ => Operand::Meta(rng.random_range(0..num_metas)),
    }
}

fn cmp_op(rng: &mut SmallRng) -> CmpOp {
    match rng.random_range(0..6u32) {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        _ => CmpOp::Ge,
    }
}

fn alu_op(rng: &mut SmallRng) -> AluOp {
    match rng.random_range(0..5u32) {
        0 => AluOp::Write,
        1 => AluOp::Add,
        2 => AluOp::Sub,
        3 => AluOp::Max,
        _ => AluOp::Min,
    }
}

fn bin_op(rng: &mut SmallRng) -> BinOp {
    match rng.random_range(0..11u32) {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Min,
        3 => BinOp::Max,
        4 => BinOp::And,
        5 => BinOp::Or,
        6 => BinOp::Xor,
        7 => BinOp::Eq,
        8 => BinOp::Ne,
        9 => BinOp::Lt,
        _ => BinOp::Mod,
    }
}

/// Generate a random program from a seed. Deterministic per seed.
pub fn program(seed: u64) -> TxnProgram {
    let rng = &mut SmallRng::seed_from_u64(seed);
    let num_arrays = rng.random_range(1..5usize);
    let num_fields = rng.random_range(1..4usize);
    let num_metas = rng.random_range(4..8usize);
    let arrays: Vec<ArrayDecl> = (0..num_arrays)
        .map(|i| ArrayDecl {
            name: array_name(i),
            cells: rng.random_range(1..9usize),
            bytes_per_cell: if rng.random::<bool>() { 4 } else { 8 },
            init: rng.random_range(0..4u64),
        })
        .collect();

    let num_steps = rng.random_range(4..17usize);
    let mut steps: Vec<Step> = Vec::with_capacity(num_steps);
    let mut accessed = vec![false; num_arrays];
    let mut recircs: u32 = 0;

    let guard = |rng: &mut SmallRng| -> Option<Pred> {
        if rng.random_range(0..10u32) < 3 {
            Some(Pred {
                op: cmp_op(rng),
                a: operand(rng, num_fields, num_metas),
                b: operand(rng, num_fields, num_metas),
            })
        } else {
            None
        }
    };

    while steps.len() < num_steps {
        match rng.random_range(0..100u32) {
            0..=44 => {
                // Pick an array: usually one untouched this pass; 8% of
                // the time deliberately re-access (a reject case).
                let bad = rng.random_range(0..100u32) < 8;
                let pool: Vec<usize> = (0..num_arrays).filter(|&i| accessed[i] == bad).collect();
                let Some(&array) = pool.get(rng.random_range(0..pool.len().max(1))) else {
                    // Every array touched already: recirculate or stop.
                    if recircs < MAX_RECIRCS {
                        steps.push(Step::new(StepOp::Recirculate));
                        recircs += 1;
                        accessed.iter_mut().for_each(|a| *a = false);
                    } else {
                        break;
                    }
                    continue;
                };
                accessed[array] = true;
                let cond = if rng.random_range(0..4u32) == 0 {
                    Some((cmp_op(rng), operand(rng, num_fields, num_metas)))
                } else {
                    None
                };
                let export = if rng.random::<bool>() {
                    Some((
                        rng.random_range(0..num_metas),
                        if rng.random::<bool>() {
                            Export::Old
                        } else {
                            Export::New
                        },
                    ))
                } else {
                    None
                };
                let g = guard(rng);
                let op = StepOp::Rmw {
                    array,
                    index: operand(rng, num_fields, num_metas),
                    cond,
                    alu: alu_op(rng),
                    value: operand(rng, num_fields, num_metas),
                    export,
                };
                steps.push(match g {
                    Some(g) => Step::guarded(g, op),
                    None => Step::new(op),
                });
            }
            45..=74 => {
                let op = StepOp::Compute {
                    dst: rng.random_range(0..num_metas),
                    op: bin_op(rng),
                    a: operand(rng, num_fields, num_metas),
                    b: operand(rng, num_fields, num_metas),
                };
                steps.push(match guard(rng) {
                    Some(g) => Step::guarded(g, op),
                    None => Step::new(op),
                });
            }
            75..=89 => {
                let op = StepOp::Emit {
                    kind: rng.random_range(1..5u64),
                    a: operand(rng, num_fields, num_metas),
                    b: operand(rng, num_fields, num_metas),
                };
                steps.push(match guard(rng) {
                    Some(g) => Step::guarded(g, op),
                    None => Step::new(op),
                });
            }
            _ => {
                if recircs < MAX_RECIRCS {
                    steps.push(Step::new(StepOp::Recirculate));
                    recircs += 1;
                    accessed.iter_mut().for_each(|a| *a = false);
                }
            }
        }
    }

    // 10% under-declare the recirculation budget (a reject case).
    let max_recirculations = if recircs > 0 && rng.random_range(0..10u32) == 0 {
        recircs - 1
    } else {
        recircs
    };

    TxnProgram {
        name: "generated",
        max_recirculations,
        arrays,
        num_fields,
        num_metas,
        steps,
    }
}

/// Generate `count` packets of `num_fields` fields each. Values are
/// mostly small (so array indices and guards collide often) with an
/// occasional full-range value to exercise wrapping arithmetic.
pub fn packets(seed: u64, num_fields: usize, count: usize) -> Vec<Vec<u64>> {
    let rng = &mut SmallRng::seed_from_u64(seed ^ 0xA076_1D64_78BD_642F);
    (0..count)
        .map(|_| {
            (0..num_fields)
                .map(|_| {
                    if rng.random_range(0..100u32) < 85 {
                        rng.random_range(0..8u64)
                    } else {
                        rng.random::<u64>()
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        assert_eq!(program(42), program(42));
        assert_ne!(program(42), program(43), "different seeds differ");
        assert_eq!(packets(7, 2, 4), packets(7, 2, 4));
    }

    #[test]
    fn generated_programs_are_structurally_valid() {
        for seed in 0..200 {
            let p = program(seed);
            p.validate()
                .unwrap_or_else(|e| panic!("seed {seed}: invalid IR: {e}"));
            assert!(!p.steps.is_empty());
        }
    }

    #[test]
    fn packets_match_field_arity() {
        let p = program(5);
        for pkt in packets(5, p.num_fields, 32) {
            assert_eq!(pkt.len(), p.num_fields);
        }
    }
}
