//! Data-plane rate limiters for the per-tenant quota policy (§4.4).
//!
//! "Rate limiters can be implemented in the switch data plane with either
//! meters that can automatically throttle a tenant, or counters that
//! count the tenants' requests and compare with their quotas." This
//! module implements the meter flavor as a token bucket: integer tokens,
//! nanosecond refill arithmetic, no floating point in the hot path.

/// A token-bucket meter.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    /// Tokens added per second.
    rate_per_sec: u64,
    /// Maximum burst (bucket capacity), in tokens.
    burst: u64,
    /// Current tokens, scaled by `SCALE` for sub-token precision.
    tokens_scaled: u64,
    /// Last refill time (ns).
    last_ns: u64,
}

const SCALE: u64 = 1_000_000;

impl TokenBucket {
    /// A bucket refilling at `rate_per_sec` with capacity `burst`,
    /// starting full at time `now_ns`.
    pub fn new(rate_per_sec: u64, burst: u64, now_ns: u64) -> TokenBucket {
        assert!(rate_per_sec > 0, "meter rate must be positive");
        assert!(burst > 0, "meter burst must be positive");
        TokenBucket {
            rate_per_sec,
            burst,
            tokens_scaled: burst * SCALE,
            last_ns: now_ns,
        }
    }

    fn refill(&mut self, now_ns: u64) {
        if now_ns <= self.last_ns {
            return;
        }
        let dt = now_ns - self.last_ns;
        // tokens += rate * dt / 1e9, in scaled units; u128 avoids overflow.
        let add = (self.rate_per_sec as u128 * dt as u128 * SCALE as u128 / 1_000_000_000) as u64;
        self.tokens_scaled = (self.tokens_scaled + add).min(self.burst * SCALE);
        self.last_ns = now_ns;
    }

    /// Try to consume one token at time `now_ns`. Returns `false` when
    /// the tenant is over quota (the packet is throttled).
    pub fn try_consume(&mut self, now_ns: u64) -> bool {
        self.refill(now_ns);
        if self.tokens_scaled >= SCALE {
            self.tokens_scaled -= SCALE;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (floor).
    pub fn available(&self) -> u64 {
        self.tokens_scaled / SCALE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_full_and_drains() {
        let mut b = TokenBucket::new(1_000, 5, 0);
        for _ in 0..5 {
            assert!(b.try_consume(0));
        }
        assert!(!b.try_consume(0), "burst exhausted");
    }

    #[test]
    fn refills_at_rate() {
        let mut b = TokenBucket::new(1_000, 5, 0);
        for _ in 0..5 {
            b.try_consume(0);
        }
        // 1000 tokens/s → 1 token per ms.
        assert!(!b.try_consume(999_999));
        assert!(b.try_consume(1_000_000));
        assert!(!b.try_consume(1_000_000));
    }

    #[test]
    fn burst_caps_accumulation() {
        let mut b = TokenBucket::new(1_000_000, 3, 0);
        // A long idle period cannot bank more than `burst`.
        b.refill(10_000_000_000);
        assert_eq!(b.available(), 3);
    }

    #[test]
    fn time_going_backwards_is_ignored() {
        let mut b = TokenBucket::new(1_000, 5, 1_000_000);
        assert!(b.try_consume(500)); // earlier timestamp: no refill, but burst remains
        assert_eq!(b.available(), 4);
    }

    #[test]
    fn sustained_rate_is_enforced() {
        // Consume as fast as possible for 1 simulated second at 10k/s.
        let mut b = TokenBucket::new(10_000, 10, 0);
        let mut granted = 0u64;
        for step in 0..1_000_000u64 {
            if b.try_consume(step * 1_000) {
                granted += 1;
            }
        }
        // 1 second elapsed: expect ~10_000 grants (+burst slack).
        assert!((10_000..=10_011).contains(&granted), "granted = {granted}");
    }

    #[test]
    fn refill_boundary_is_exact() {
        // 3 tokens/s, burst 1: a whole token takes ⌈1e9/3⌉ ns. One
        // nanosecond short of that leaves the scaled balance at
        // 999_999/1_000_000 of a token — still throttled. Each probe
        // uses its own bucket: refills floor to scaled units, so the
        // early probe would otherwise shave the remainder off the
        // boundary probe.
        let mut early = TokenBucket::new(3, 1, 0);
        assert!(early.try_consume(0));
        assert!(
            !early.try_consume(333_333_333),
            "one ns early: no token yet"
        );

        let mut exact = TokenBucket::new(3, 1, 0);
        assert!(exact.try_consume(0));
        assert!(
            exact.try_consume(333_333_334),
            "boundary crossed: token granted"
        );
    }

    #[test]
    fn fractional_refills_accumulate_across_calls() {
        // 1 token/s, burst 1: two half-second refills must bank their
        // sub-token remainders rather than flooring each one away.
        let mut b = TokenBucket::new(1, 1, 0);
        assert!(b.try_consume(0));
        assert!(!b.try_consume(500_000_000), "half a token is not a token");
        assert!(b.try_consume(1_000_000_000), "two halves make a whole");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let _ = TokenBucket::new(0, 1, 0);
    }
}
