//! The pooled shared queue (paper §4.2, Figure 5).
//!
//! Instead of statically binding one register array to one lock, NetLock
//! pools the register arrays of multiple stages into a single large
//! *shared queue* and gives each lock an adjustable, contiguous region
//! `[left, right)` of it. Region boundaries live in registers, so the
//! control plane can resize queues at runtime without recompiling the
//! data plane — that is the paper's answer to memory fragmentation.
//!
//! Per-region registers (all in metadata stages that precede the slot
//! arrays):
//! - `bounds[qid] = (left, right)` — the region, in global slot indices
//! - `count[qid]` — occupied slots (holders still occupy their slot!)
//! - `max_count[qid]` — high-water mark, the contention measurement `c_i`
//! - `req_count[qid]` — acquire arrivals, the rate measurement `r_i`
//! - `head[qid]`, `tail[qid]` — circular offsets within the region
//! - `excl[qid]` — number of exclusive entries queued (drives Algorithm
//!   2's `queue.is_shared()` check in a single read-modify-write)
//!
//! Every data-plane operation below touches each register array at most
//! once per pass, in ascending stage order, as the hardware requires;
//! reading a queue entry after a dequeue needs a *resubmit* (a new pass),
//! exactly like the P4 program.

use netlock_proto::LockMode;

use crate::register::{Pass, RegisterArray};
use crate::slot::Slot;

/// On-chip bytes per queue slot (paper §5: "100K slots with 20B slot
/// size only consume 2 MB").
pub const SLOT_BYTES: usize = 20;

/// Stage of the bounds registers.
pub const STAGE_BOUNDS: usize = 0;
/// Stage of the count/rate registers.
pub const STAGE_COUNTERS: usize = 1;
/// Stage of the head/tail/excl pointer registers.
pub const STAGE_POINTERS: usize = 2;
/// First stage holding slot register arrays.
pub const STAGE_SLOTS_BASE: usize = 3;

/// Construction parameters for a [`SharedQueue`].
#[derive(Clone, Debug)]
pub struct SharedQueueLayout {
    /// Size of each slot register array; array `i` is placed in stage
    /// `STAGE_SLOTS_BASE + i` by default (`stage_offset` shifts all of
    /// them, used by the priority engine to stack level queues).
    pub slot_arrays: Vec<usize>,
    /// Number of queue regions (locks) the metadata arrays can describe.
    pub max_regions: usize,
    /// Added to every array's stage (0 for the single-queue engine).
    pub stage_offset: usize,
}

impl SharedQueueLayout {
    /// The paper's default: 100K slots pooled from 10 arrays of 10K.
    pub fn paper_default() -> SharedQueueLayout {
        SharedQueueLayout {
            slot_arrays: vec![10_000; 10],
            max_regions: 10_000,
            stage_offset: 0,
        }
    }

    /// A small layout for tests: `arrays` arrays of `size` slots.
    pub fn small(arrays: usize, size: usize, max_regions: usize) -> SharedQueueLayout {
        SharedQueueLayout {
            slot_arrays: vec![size; arrays],
            max_regions,
            stage_offset: 0,
        }
    }

    /// Total pooled slots.
    pub fn total_slots(&self) -> usize {
        self.slot_arrays.iter().sum()
    }
}

/// Outcome of an acquire enqueue pass.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EnqueueOutcome {
    /// Request enqueued and immediately granted (queue was empty, or all
    /// entries are shared and the request is shared).
    Granted,
    /// Request enqueued behind incompatible entries; it waits.
    Queued,
    /// Region full — the request must overflow to the lock server.
    Full,
}

/// Detailed result of [`SharedQueue::enqueue_deciding`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EnqueueDetail {
    /// Region was full; nothing was written.
    pub full: bool,
    /// The caller's grant decision (false when full).
    pub granted: bool,
    /// Queue occupancy before this enqueue.
    pub count_old: u32,
    /// Exclusive entries in the queue before this enqueue (0 when full —
    /// the excl register is not read on the overflow path).
    pub excl_old: u32,
}

/// Outcome of a release dequeue pass.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DequeueOutcome {
    /// Queue was empty; nothing released (stale/duplicate release).
    Spurious,
    /// Head removed.
    Dequeued {
        /// Entries remaining after the dequeue.
        remaining: u32,
        /// Offset (within the region) of the new head.
        new_head: u32,
    },
}

/// A control-plane view of one region's registers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RegionView {
    /// Global index of the first slot.
    pub left: u32,
    /// Global index one past the last slot.
    pub right: u32,
    /// Occupied slots.
    pub count: u32,
    /// Circular head offset.
    pub head: u32,
    /// Circular tail offset.
    pub tail: u32,
    /// Exclusive entries in the queue.
    pub excl: u32,
}

impl RegionView {
    /// Region capacity in slots.
    pub fn capacity(&self) -> u32 {
        self.right - self.left
    }
}

/// The pooled multi-array circular queue.
pub struct SharedQueue {
    bounds: RegisterArray<(u32, u32)>,
    count: RegisterArray<u32>,
    max_count: RegisterArray<u32>,
    req_count: RegisterArray<u64>,
    head: RegisterArray<u32>,
    tail: RegisterArray<u32>,
    excl: RegisterArray<u32>,
    slots: Vec<RegisterArray<Slot>>,
    /// `prefix[i]` = global index of the first slot of array `i`.
    prefix: Vec<u32>,
    total_slots: u32,
}

impl SharedQueue {
    /// Build the queue from a layout. All regions start empty with zero
    /// capacity; the control plane assigns `[left, right)` windows.
    pub fn new(layout: &SharedQueueLayout) -> SharedQueue {
        assert!(!layout.slot_arrays.is_empty(), "need at least one array");
        assert!(layout.max_regions > 0, "need at least one region");
        let off = layout.stage_offset;
        let mut slots = Vec::with_capacity(layout.slot_arrays.len());
        let mut prefix = Vec::with_capacity(layout.slot_arrays.len());
        let mut acc = 0u32;
        for (i, &size) in layout.slot_arrays.iter().enumerate() {
            assert!(size > 0, "slot arrays must be non-empty");
            prefix.push(acc);
            slots.push(RegisterArray::new(
                "slots",
                STAGE_SLOTS_BASE + off + i,
                size,
                Slot::EMPTY,
            ));
            acc += size as u32;
        }
        SharedQueue {
            bounds: RegisterArray::new("bounds", STAGE_BOUNDS + off, layout.max_regions, (0, 0)),
            count: RegisterArray::new("count", STAGE_COUNTERS + off, layout.max_regions, 0),
            max_count: RegisterArray::new("max_count", STAGE_COUNTERS + off, layout.max_regions, 0),
            req_count: RegisterArray::new("req_count", STAGE_COUNTERS + off, layout.max_regions, 0),
            head: RegisterArray::new("head", STAGE_POINTERS + off, layout.max_regions, 0),
            tail: RegisterArray::new("tail", STAGE_POINTERS + off, layout.max_regions, 0),
            excl: RegisterArray::new("excl", STAGE_POINTERS + off, layout.max_regions, 0),
            slots,
            prefix,
            total_slots: acc,
        }
    }

    /// Total pooled slots across all arrays.
    pub fn total_slots(&self) -> u32 {
        self.total_slots
    }

    /// Number of addressable regions.
    pub fn max_regions(&self) -> usize {
        self.bounds.len()
    }

    /// Map a global slot index to `(array, offset)`.
    fn locate(&self, global: u32) -> (usize, usize) {
        debug_assert!(global < self.total_slots, "global index out of pool");
        // partition_point: first array whose start is > global, minus one.
        let i = self.prefix.partition_point(|&start| start <= global) - 1;
        (i, (global - self.prefix[i]) as usize)
    }

    /// Data-plane pass: enqueue an acquire request into region `qid`.
    ///
    /// Performs Algorithm 2 lines 1–5 in one pipeline pass: conditional
    /// enqueue + the grant check (`queue.is_empty()` via the count RMW,
    /// `queue.is_shared()` via the excl RMW).
    #[inline]
    pub fn enqueue(&mut self, pass: &mut Pass, qid: usize, slot: Slot) -> EnqueueOutcome {
        let mode = slot.mode;
        let d = self.enqueue_deciding(pass, qid, slot, false, |count_old, excl_old| {
            count_old == 0 || (excl_old == 0 && mode == LockMode::Shared)
        });
        if d.full {
            EnqueueOutcome::Full
        } else if d.granted {
            EnqueueOutcome::Granted
        } else {
            EnqueueOutcome::Queued
        }
    }

    /// Data-plane pass: enqueue with a caller-supplied grant decision.
    ///
    /// `decide(count_old, excl_old)` runs after the counter RMWs and
    /// before the slot write — on hardware this is a predicate computed
    /// in packet metadata mid-pipeline. When `mark` is set, the written
    /// slot's `granted` bit records the decision (the priority engine
    /// tracks holders explicitly; the FCFS engine does not need to).
    #[inline]
    pub fn enqueue_deciding(
        &mut self,
        pass: &mut Pass,
        qid: usize,
        mut slot: Slot,
        mark: bool,
        decide: impl FnOnce(u32, u32) -> bool,
    ) -> EnqueueDetail {
        let now_ns = slot.issued_at_ns; // arrival ≈ grant time for immediate grants
        let (left, right) = self.bounds.access(pass, qid, |b| *b);
        let cap = right - left;
        // Rate counter r_i counts every acquire arrival, even overflowed.
        self.req_count.access(pass, qid, |c| *c += 1);
        // Conditional increment: only if there is space.
        let count_old = self.count.access(pass, qid, |c| {
            let old = *c;
            if old < cap {
                *c += 1;
            }
            old
        });
        if count_old >= cap {
            return EnqueueDetail {
                full: true,
                granted: false,
                count_old,
                excl_old: 0,
            };
        }
        let count_new = count_old + 1;
        self.max_count
            .access(pass, qid, |m| *m = (*m).max(count_new));
        let tail_old = self.tail.access(pass, qid, |t| {
            let old = *t;
            *t = if old + 1 == cap { 0 } else { old + 1 };
            old
        });
        let excl_old = self.excl.access(pass, qid, |e| {
            let old = *e;
            if slot.mode == LockMode::Exclusive {
                *e += 1;
            }
            old
        });
        let granted = decide(count_old, excl_old);
        if mark {
            slot.granted = granted;
            if granted {
                slot.granted_at_ns = now_ns;
            }
        }
        let global = left + tail_old;
        let (arr, off) = self.locate(global);
        self.slots[arr].access(pass, off, |s| *s = slot);
        EnqueueDetail {
            full: false,
            granted,
            count_old,
            excl_old,
        }
    }

    /// Data-plane pass: dequeue the head of region `qid` on a release.
    ///
    /// This is Algorithm 2's `flag == 0` branch: it removes the head and
    /// reports where the new head is; *reading* the new head requires a
    /// resubmit ([`SharedQueue::read_at`] in a fresh pass).
    ///
    /// `released_mode` is the mode carried in the release packet; it is
    /// also the mode of the dequeued holder (only one exclusive holder
    /// can exist, and shared releases are commutative — §4.2), so the
    /// excl counter can be maintained without reading the slot.
    #[inline]
    pub fn release_dequeue(
        &mut self,
        pass: &mut Pass,
        qid: usize,
        released_mode: LockMode,
    ) -> DequeueOutcome {
        let (left, right) = self.bounds.access(pass, qid, |b| *b);
        let cap = right - left;
        if cap == 0 {
            return DequeueOutcome::Spurious;
        }
        let count_old = self.count.access(pass, qid, |c| {
            let old = *c;
            if old > 0 {
                *c -= 1;
            }
            old
        });
        if count_old == 0 {
            return DequeueOutcome::Spurious;
        }
        let head_old = self.head.access(pass, qid, |h| {
            let old = *h;
            *h = if old + 1 == cap { 0 } else { old + 1 };
            old
        });
        self.excl.access(pass, qid, |e| {
            if released_mode == LockMode::Exclusive && *e > 0 {
                *e -= 1;
            }
        });
        let new_head = if head_old + 1 == cap { 0 } else { head_old + 1 };
        DequeueOutcome::Dequeued {
            remaining: count_old - 1,
            new_head,
        }
    }

    /// Data-plane pass: read the slot at region offset `offset`
    /// (Algorithm 2's `flag == 1/2` branches, each a resubmitted pass).
    #[inline]
    pub fn read_at(&mut self, pass: &mut Pass, qid: usize, offset: u32) -> Slot {
        let (left, right) = self.bounds.access(pass, qid, |b| *b);
        let cap = right - left;
        debug_assert!(offset < cap, "offset beyond region capacity");
        let global = left + offset;
        let (arr, off) = self.locate(global);
        self.slots[arr].access(pass, off, |s| *s)
    }

    /// Data-plane pass: read *and mark granted* the slot at `offset`
    /// (used by the priority engine, which tracks holders explicitly).
    /// `now_ns` stamps the grant time for lease expiry.
    pub fn read_and_mark_granted(
        &mut self,
        pass: &mut Pass,
        qid: usize,
        offset: u32,
        now_ns: u64,
    ) -> Slot {
        let (left, _right) = self.bounds.access(pass, qid, |b| *b);
        let global = left + offset;
        let (arr, off) = self.locate(global);
        self.slots[arr].access(pass, off, |s| {
            s.granted = true;
            s.granted_at_ns = now_ns;
            *s
        })
    }

    /// The offset following `offset` within region `qid` (wraparound).
    /// Pure pointer arithmetic — no register access.
    #[inline]
    pub fn next_offset(&self, qid: usize, offset: u32) -> u32 {
        let (left, right) = self.bounds.cp_read(qid);
        let cap = right - left;
        if offset + 1 == cap {
            0
        } else {
            offset + 1
        }
    }

    // ------------------------------------------------------------------
    // Control-plane (PCIe) operations
    // ------------------------------------------------------------------

    /// Read all of a region's registers.
    pub fn cp_region(&self, qid: usize) -> RegionView {
        let (left, right) = self.bounds.cp_read(qid);
        RegionView {
            left,
            right,
            count: self.count.cp_read(qid),
            head: self.head.cp_read(qid),
            tail: self.tail.cp_read(qid),
            excl: self.excl.cp_read(qid),
        }
    }

    /// Assign region `qid` the window `[left, right)`, resetting its
    /// pointers. The region must be empty (a lock is only moved or
    /// resized after its queue drains — §4.3).
    pub fn cp_set_region(&mut self, qid: usize, left: u32, right: u32) {
        assert!(left <= right, "inverted region");
        assert!(right <= self.total_slots, "region beyond pooled memory");
        assert_eq!(
            self.count.cp_read(qid),
            0,
            "cannot move or resize a non-empty queue region"
        );
        self.bounds.cp_write(qid, (left, right));
        self.head.cp_write(qid, 0);
        self.tail.cp_write(qid, 0);
        self.excl.cp_write(qid, 0);
    }

    /// Snapshot the entries of region `qid` in queue order (head first).
    pub fn cp_entries(&self, qid: usize) -> Vec<Slot> {
        let v = self.cp_region(qid);
        let cap = v.capacity();
        let mut out = Vec::with_capacity(v.count as usize);
        let mut off = v.head;
        for _ in 0..v.count {
            let (arr, idx) = self.locate(v.left + off);
            out.push(self.slots[arr].cp_read(idx));
            off = if off + 1 == cap { 0 } else { off + 1 };
        }
        out
    }

    /// Read and reset the `r_i` counter for `qid`.
    pub fn cp_take_req_count(&mut self, qid: usize) -> u64 {
        let v = self.req_count.cp_read(qid);
        self.req_count.cp_write(qid, 0);
        v
    }

    /// Read and reset the `c_i` high-water mark for `qid`.
    pub fn cp_take_max_count(&mut self, qid: usize) -> u32 {
        let v = self.max_count.cp_read(qid);
        self.max_count.cp_write(qid, 0);
        v
    }

    /// Overwrite the slot at region offset `offset` (lease sweeper uses
    /// this to tombstone expired holders before force-releasing).
    pub fn cp_write_slot(&mut self, qid: usize, offset: u32, slot: Slot) {
        let v = self.cp_region(qid);
        let (arr, idx) = self.locate(v.left + offset);
        self.slots[arr].cp_write(idx, slot);
    }

    /// On-chip memory consumed by this queue, in bytes, using the
    /// paper's accounting (20 B per slot — §5's "100K slots with 20B
    /// slot size only consume 2 MB" — plus the per-region metadata
    /// registers).
    pub fn cp_memory_bytes(&self) -> usize {
        // bounds (8) + count/max/req (4+4+8) + head/tail/excl (4+4+4).
        const META_BYTES_PER_REGION: usize = 36;
        self.total_slots as usize * SLOT_BYTES + self.max_regions() * META_BYTES_PER_REGION
    }

    /// Register every array of this queue into a static resource model
    /// (cell widths use the paper's on-chip accounting, which is what
    /// [`SharedQueue::cp_memory_bytes`] charges too).
    pub fn describe(&self, out: &mut crate::analysis::layout::ProgramLayout) {
        out.register_array(&self.bounds, 8);
        out.register_array(&self.count, 4);
        out.register_array(&self.max_count, 4);
        out.register_array(&self.req_count, 8);
        out.register_array(&self.head, 4);
        out.register_array(&self.tail, 4);
        out.register_array(&self.excl, 4);
        for arr in &self.slots {
            out.register_array(arr, SLOT_BYTES);
        }
        // Algorithm 2's release cascade resubmits at most once per entry
        // a region can hold, and a region can span the whole pool.
        out.declare_resubmit_bound(self.total_slots + 1);
    }

    /// Wipe every register — models a switch reboot that "retains none of
    /// its former state or register values" (§6.5).
    pub fn cp_reset_all(&mut self) {
        self.bounds.cp_fill((0, 0));
        self.count.cp_fill(0);
        self.max_count.cp_fill(0);
        self.req_count.cp_fill(0);
        self.head.cp_fill(0);
        self.tail.cp_fill(0);
        self.excl.cp_fill(0);
        for arr in &mut self.slots {
            arr.cp_fill(Slot::EMPTY);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::register::PassId;
    use netlock_proto::{ClientAddr, Priority, TenantId, TxnId};

    fn slot(mode: LockMode, txn: u64) -> Slot {
        Slot {
            valid: true,
            mode,
            txn: TxnId(txn),
            client: ClientAddr(txn as u32),
            tenant: TenantId(0),
            priority: Priority(0),
            issued_at_ns: 0,
            granted: false,
            granted_at_ns: 0,
        }
    }

    fn queue_with_region(cap: u32) -> SharedQueue {
        let mut q = SharedQueue::new(&SharedQueueLayout::small(2, 8, 4));
        q.cp_set_region(0, 0, cap);
        q
    }

    struct PassGen(u64);
    impl PassGen {
        fn next(&mut self) -> Pass {
            self.0 += 1;
            Pass::new(PassId(self.0), 0)
        }
    }

    #[test]
    fn empty_enqueue_grants() {
        let mut q = queue_with_region(4);
        let mut pg = PassGen(0);
        let out = q.enqueue(&mut pg.next(), 0, slot(LockMode::Exclusive, 1));
        assert_eq!(out, EnqueueOutcome::Granted);
        assert_eq!(q.cp_region(0).count, 1);
        assert_eq!(q.cp_region(0).excl, 1);
    }

    #[test]
    fn shared_run_grants_all() {
        let mut q = queue_with_region(4);
        let mut pg = PassGen(0);
        for i in 0..3 {
            let out = q.enqueue(&mut pg.next(), 0, slot(LockMode::Shared, i));
            assert_eq!(out, EnqueueOutcome::Granted, "shared req {i}");
        }
        assert_eq!(q.cp_region(0).count, 3);
        assert_eq!(q.cp_region(0).excl, 0);
    }

    #[test]
    fn exclusive_behind_shared_queues() {
        let mut q = queue_with_region(4);
        let mut pg = PassGen(0);
        assert_eq!(
            q.enqueue(&mut pg.next(), 0, slot(LockMode::Shared, 1)),
            EnqueueOutcome::Granted
        );
        assert_eq!(
            q.enqueue(&mut pg.next(), 0, slot(LockMode::Exclusive, 2)),
            EnqueueOutcome::Queued
        );
        // Shared after a queued exclusive must wait (FCFS, no starvation).
        assert_eq!(
            q.enqueue(&mut pg.next(), 0, slot(LockMode::Shared, 3)),
            EnqueueOutcome::Queued
        );
    }

    #[test]
    fn full_region_overflows_without_corruption() {
        let mut q = queue_with_region(2);
        let mut pg = PassGen(0);
        q.enqueue(&mut pg.next(), 0, slot(LockMode::Exclusive, 1));
        q.enqueue(&mut pg.next(), 0, slot(LockMode::Exclusive, 2));
        let before = q.cp_region(0);
        assert_eq!(
            q.enqueue(&mut pg.next(), 0, slot(LockMode::Exclusive, 3)),
            EnqueueOutcome::Full
        );
        let after = q.cp_region(0);
        assert_eq!(before, after, "overflow must not mutate the region");
        // r_i still counts the overflowed arrival.
        assert_eq!(q.cp_take_req_count(0), 3);
    }

    #[test]
    fn release_dequeues_fifo_and_wraps() {
        let mut q = queue_with_region(3);
        let mut pg = PassGen(0);
        for i in 0..3 {
            q.enqueue(&mut pg.next(), 0, slot(LockMode::Exclusive, i));
        }
        // Release #0 → new head is entry #1.
        let out = q.release_dequeue(&mut pg.next(), 0, LockMode::Exclusive);
        let DequeueOutcome::Dequeued {
            remaining,
            new_head,
        } = out
        else {
            panic!("expected dequeue");
        };
        assert_eq!(remaining, 2);
        let head = q.read_at(&mut pg.next(), 0, new_head);
        assert_eq!(head.txn, TxnId(1));
        // Enqueue another: tail wraps to offset 0.
        assert_eq!(
            q.enqueue(&mut pg.next(), 0, slot(LockMode::Exclusive, 3)),
            EnqueueOutcome::Queued
        );
        let entries = q.cp_entries(0);
        let txns: Vec<u64> = entries.iter().map(|s| s.txn.0).collect();
        assert_eq!(txns, vec![1, 2, 3], "queue order preserved across wrap");
    }

    #[test]
    fn spurious_release_on_empty() {
        let mut q = queue_with_region(3);
        let mut pg = PassGen(0);
        assert_eq!(
            q.release_dequeue(&mut pg.next(), 0, LockMode::Shared),
            DequeueOutcome::Spurious
        );
        // Zero-capacity region is also spurious, not a panic.
        let mut q2 = SharedQueue::new(&SharedQueueLayout::small(1, 4, 2));
        assert_eq!(
            q2.release_dequeue(&mut pg.next(), 1, LockMode::Shared),
            DequeueOutcome::Spurious
        );
    }

    #[test]
    fn excl_counter_tracks_queue_content() {
        let mut q = queue_with_region(4);
        let mut pg = PassGen(0);
        q.enqueue(&mut pg.next(), 0, slot(LockMode::Exclusive, 1));
        q.enqueue(&mut pg.next(), 0, slot(LockMode::Exclusive, 2));
        q.enqueue(&mut pg.next(), 0, slot(LockMode::Shared, 3));
        assert_eq!(q.cp_region(0).excl, 2);
        q.release_dequeue(&mut pg.next(), 0, LockMode::Exclusive);
        assert_eq!(q.cp_region(0).excl, 1);
        q.release_dequeue(&mut pg.next(), 0, LockMode::Exclusive);
        assert_eq!(q.cp_region(0).excl, 0);
        // Now only the shared entry remains; a shared enqueue grants.
        assert_eq!(
            q.enqueue(&mut pg.next(), 0, slot(LockMode::Shared, 4)),
            EnqueueOutcome::Granted
        );
    }

    #[test]
    fn regions_spanning_arrays() {
        // 2 arrays of 8: a region [6, 12) crosses the array boundary.
        let mut q = SharedQueue::new(&SharedQueueLayout::small(2, 8, 4));
        q.cp_set_region(1, 6, 12);
        let mut pg = PassGen(0);
        for i in 0..6 {
            q.enqueue(&mut pg.next(), 1, slot(LockMode::Exclusive, i));
        }
        let txns: Vec<u64> = q.cp_entries(1).iter().map(|s| s.txn.0).collect();
        assert_eq!(txns, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(
            q.enqueue(&mut pg.next(), 1, slot(LockMode::Exclusive, 9)),
            EnqueueOutcome::Full
        );
    }

    #[test]
    fn max_count_high_water_mark() {
        let mut q = queue_with_region(4);
        let mut pg = PassGen(0);
        for i in 0..3 {
            q.enqueue(&mut pg.next(), 0, slot(LockMode::Exclusive, i));
        }
        q.release_dequeue(&mut pg.next(), 0, LockMode::Exclusive);
        assert_eq!(q.cp_take_max_count(0), 3);
        // Taking resets the mark.
        assert_eq!(q.cp_take_max_count(0), 0);
    }

    #[test]
    #[should_panic(expected = "non-empty queue region")]
    fn resize_of_nonempty_region_panics() {
        let mut q = queue_with_region(4);
        let mut pg = PassGen(0);
        q.enqueue(&mut pg.next(), 0, slot(LockMode::Shared, 1));
        q.cp_set_region(0, 0, 8);
    }

    #[test]
    fn reset_all_clears_state() {
        let mut q = queue_with_region(4);
        let mut pg = PassGen(0);
        q.enqueue(&mut pg.next(), 0, slot(LockMode::Exclusive, 1));
        q.cp_reset_all();
        let v = q.cp_region(0);
        assert_eq!(v.count, 0);
        assert_eq!(v.capacity(), 0);
        assert_eq!(q.cp_take_req_count(0), 0);
    }

    #[test]
    fn read_and_mark_granted_sets_bit() {
        let mut q = queue_with_region(4);
        let mut pg = PassGen(0);
        q.enqueue(&mut pg.next(), 0, slot(LockMode::Exclusive, 1));
        let v = q.cp_region(0);
        let s = q.read_and_mark_granted(&mut pg.next(), 0, v.head, 42);
        assert!(s.granted, "RMW returns the post-update slot");
        let entries = q.cp_entries(0);
        assert!(entries[0].granted);
    }
}
