//! Exhaustive path exploration of the data plane.
//!
//! Enumerates reachable data-plane states — lock residence × overflow
//! protocol phase × queue fullness, for each engine variant — crosses
//! them with every [`NetLockMsg`] kind, runs
//! [`crate::dataplane::DataPlane::process`] with an access-trace sink
//! attached, and checks every recorded pass against the §4.2 hardware
//! discipline ([`super::trace::check_discipline`]).
//!
//! Probes respect protocol preconditions: a server only pushes requests
//! after the switch advertised queue space, so a non-empty `Push` is not
//! sent at a full region (the data plane debug-asserts on that invariant
//! violation, by design). Every message *kind* is still probed in every
//! state.

use std::collections::BTreeMap;
use std::fmt;

use netlock_proto::{
    ClientAddr, GrantMsg, Grantor, LockId, LockMode, LockRequest, NetLockMsg, Priority,
    ReleaseRequest, TenantId, TxnId,
};

use crate::dataplane::{DataPlane, Engine};
use crate::priority::PriorityLayout;
use crate::shared_queue::SharedQueueLayout;

use super::trace::{check_discipline, new_sink, DisciplineViolation, TraceSink, TraceStats};

/// Which engine variant a data plane is explored with.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EngineKind {
    /// The FCFS engine ([`crate::engine::FcfsEngine`]).
    Fcfs,
    /// The priority engine ([`crate::priority::PriorityEngine`]).
    Priority,
}

/// Where the probed lock lives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ResidenceKind {
    /// Switch-resident, with queue fullness and protocol phase.
    Switch(Fullness, Protocol),
    /// Server-resident (directory entry points at a server).
    Server,
    /// No directory entry, no default route: drops.
    UnknownUnrouted,
    /// No directory entry, default routing installed: forwards.
    UnknownRouted,
}

/// How full the probed lock's queue region is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Fullness {
    Empty,
    Holder,
    Full,
}

/// Overflow-protocol phase of the probed lock (§4.3, §4.5).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Protocol {
    Normal,
    Overflow,
    Draining,
    Suppressed,
}

/// A discipline violation found during exploration, with the state and
/// probe that exposed it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExplorationError {
    /// Description of the explored state.
    pub state: String,
    /// The message kind being probed ("setup" for state construction).
    pub probe: &'static str,
    /// The underlying violation.
    pub violation: DisciplineViolation,
}

impl fmt::Display for ExplorationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "in state [{}], probing {}: {}",
            self.state, self.probe, self.violation
        )
    }
}

impl std::error::Error for ExplorationError {}

/// What an exploration covered.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExplorationSummary {
    /// Engine variant explored.
    pub engine: EngineKind,
    /// Distinct states enumerated.
    pub states: usize,
    /// Probe messages processed (each on a freshly rebuilt state).
    pub probes: usize,
    /// `message kind -> probes of that kind`.
    pub probes_by_kind: BTreeMap<&'static str, u64>,
    /// `message kind -> deepest resubmit depth any probe of that kind
    /// reached` (setup traffic excluded). This is what a feasibility
    /// failure prints so the offender is named, not just detected.
    pub max_resubmit_by_kind: BTreeMap<&'static str, u32>,
    /// Aggregate pass statistics over every checked trace.
    pub stats: TraceStats,
}

const SWITCH_LOCK: LockId = LockId(1);
const SERVER_LOCK: LockId = LockId(2);
const UNKNOWN_LOCK: LockId = LockId(99);

/// Region capacity of the FCFS probe lock (small, so Full and Overflow
/// are cheap to reach while still exercising the shared-grant cascade).
const FCFS_CAP: u32 = 3;

fn lock_req(lock: LockId, mode: LockMode, prio: u8, txn: u64) -> LockRequest {
    LockRequest {
        lock,
        mode,
        txn: TxnId(txn),
        client: ClientAddr(txn as u32),
        tenant: TenantId(0),
        priority: Priority(prio),
        issued_at_ns: 0,
    }
}

fn acq(lock: LockId, mode: LockMode, prio: u8, txn: u64) -> NetLockMsg {
    NetLockMsg::Acquire(lock_req(lock, mode, prio, txn))
}

fn rel(lock: LockId, mode: LockMode, prio: u8, txn: u64) -> NetLockMsg {
    NetLockMsg::Release(ReleaseRequest {
        lock,
        txn: TxnId(txn),
        mode,
        client: ClientAddr(txn as u32),
        priority: Priority(prio),
    })
}

fn grant_msg(lock: LockId) -> GrantMsg {
    GrantMsg {
        lock,
        txn: TxnId(700),
        mode: LockMode::Shared,
        client: ClientAddr(700),
        priority: Priority(0),
        grantor: Grantor::Switch,
        issued_at_ns: 0,
    }
}

fn fresh_dp(kind: EngineKind) -> DataPlane {
    let mut dp = match kind {
        EngineKind::Fcfs => {
            let mut dp = DataPlane::new_fcfs(&SharedQueueLayout::small(2, 4, 4));
            if let Engine::Fcfs(q) = dp.engine_mut() {
                q.cp_set_region(0, 0, FCFS_CAP);
            }
            dp
        }
        EngineKind::Priority => DataPlane::new_priority(&PriorityLayout::new(3, 3, 2)),
    };
    dp.directory_mut().set_switch_resident(SWITCH_LOCK, 0, 0);
    dp.directory_mut().set_server_resident(SERVER_LOCK, 1);
    dp
}

/// Acquire messages that realize a fullness level. The exclusive entry
/// sits at priority 1 and the shared entries at priority 0, so the
/// priority engine spreads them over levels; the `Full` pattern fills
/// the FCFS region exactly (X, S, S) and fills the priority engine's
/// level-0 queue (X@1, S@0 ×3) so an acquire probe hits its overflow.
fn fill_msgs(kind: EngineKind, fullness: Fullness) -> Vec<NetLockMsg> {
    match (kind, fullness) {
        (_, Fullness::Empty) => Vec::new(),
        (_, Fullness::Holder) => vec![acq(SWITCH_LOCK, LockMode::Exclusive, 1, 100)],
        (EngineKind::Fcfs, Fullness::Full) => vec![
            acq(SWITCH_LOCK, LockMode::Exclusive, 1, 100),
            acq(SWITCH_LOCK, LockMode::Shared, 0, 101),
            acq(SWITCH_LOCK, LockMode::Shared, 0, 102),
        ],
        (EngineKind::Priority, Fullness::Full) => vec![
            acq(SWITCH_LOCK, LockMode::Exclusive, 1, 100),
            acq(SWITCH_LOCK, LockMode::Shared, 0, 101),
            acq(SWITCH_LOCK, LockMode::Shared, 0, 102),
            acq(SWITCH_LOCK, LockMode::Shared, 0, 103),
        ],
    }
}

/// Build one state from scratch, processing every setup message.
fn build_state(kind: EngineKind, state: ResidenceKind, sink: &TraceSink) -> DataPlane {
    let mut dp = fresh_dp(kind);
    dp.set_trace_sink(Some(sink.clone()));
    match state {
        ResidenceKind::Switch(fullness, protocol) => {
            match protocol {
                Protocol::Normal => {
                    for m in fill_msgs(kind, fullness) {
                        dp.process_collect(m, 0);
                    }
                }
                Protocol::Draining => {
                    for m in fill_msgs(kind, fullness) {
                        dp.process_collect(m, 0);
                    }
                    dp.begin_demote(SWITCH_LOCK);
                }
                Protocol::Suppressed => {
                    // §4.5: the restarted switch comes back with an empty
                    // queue and buffers arrivals without granting.
                    dp.begin_handback_suppression(SWITCH_LOCK);
                    for m in fill_msgs(kind, fullness) {
                        dp.process_collect(m, 0);
                    }
                }
                Protocol::Overflow => {
                    // Reachable only through a full region (FCFS): fill,
                    // overflow once, then drain back to the target level.
                    for m in fill_msgs(kind, Fullness::Full) {
                        dp.process_collect(m, 0);
                    }
                    dp.process_collect(acq(SWITCH_LOCK, LockMode::Exclusive, 1, 900), 0);
                    let releases: &[NetLockMsg] = &[
                        rel(SWITCH_LOCK, LockMode::Exclusive, 1, 100),
                        rel(SWITCH_LOCK, LockMode::Shared, 0, 101),
                        rel(SWITCH_LOCK, LockMode::Shared, 0, 102),
                    ];
                    let drain = match fullness {
                        Fullness::Full => 0,
                        Fullness::Holder => 2,
                        Fullness::Empty => 3,
                    };
                    for m in &releases[..drain] {
                        dp.process_collect(m.clone(), 0);
                    }
                }
            }
        }
        ResidenceKind::Server | ResidenceKind::UnknownUnrouted => {}
        ResidenceKind::UnknownRouted => dp.set_default_servers(2),
    }
    dp
}

fn probe_lock(state: ResidenceKind) -> LockId {
    match state {
        ResidenceKind::Switch(..) => SWITCH_LOCK,
        ResidenceKind::Server => SERVER_LOCK,
        ResidenceKind::UnknownUnrouted | ResidenceKind::UnknownRouted => UNKNOWN_LOCK,
    }
}

/// Every message kind, instantiated for the state's lock. Non-empty
/// pushes are withheld from full regions (see module docs).
fn probes_for(state: ResidenceKind) -> Vec<(&'static str, NetLockMsg)> {
    let lock = probe_lock(state);
    let full_region = matches!(state, ResidenceKind::Switch(Fullness::Full, _));
    let mut probes = vec![
        ("Acquire", acq(lock, LockMode::Shared, 0, 500)),
        ("Acquire", acq(lock, LockMode::Exclusive, 1, 501)),
        ("Release", rel(lock, LockMode::Shared, 0, 101)),
        ("Release", rel(lock, LockMode::Exclusive, 1, 100)),
        ("Grant", NetLockMsg::Grant(grant_msg(lock))),
        (
            "Forwarded",
            NetLockMsg::Forwarded {
                req: lock_req(lock, LockMode::Exclusive, 1, 502),
                buffer_only: true,
            },
        ),
        ("QueueSpace", NetLockMsg::QueueSpace { lock, space: 1 }),
        (
            "Push",
            NetLockMsg::Push {
                lock,
                reqs: Box::new([]),
            },
        ),
        (
            "DbFetch",
            NetLockMsg::DbFetch {
                grant: grant_msg(lock),
            },
        ),
        (
            "DbReply",
            NetLockMsg::DbReply {
                grant: grant_msg(lock),
            },
        ),
        ("CtrlDemote", NetLockMsg::CtrlDemote { lock }),
        ("CtrlPromote", NetLockMsg::CtrlPromote { lock }),
        (
            "CtrlPromoteReady",
            NetLockMsg::CtrlPromoteReady {
                lock,
                reqs: Box::new([]),
            },
        ),
        (
            "CtrlPromoteReady",
            NetLockMsg::CtrlPromoteReady {
                lock,
                reqs: Box::new([lock_req(lock, LockMode::Exclusive, 1, 504)]),
            },
        ),
        ("CtrlHandback", NetLockMsg::CtrlHandback { lock }),
    ];
    if !full_region {
        probes.push((
            "Push",
            NetLockMsg::Push {
                lock,
                reqs: Box::new([lock_req(lock, LockMode::Shared, 0, 503)]),
            },
        ));
    }
    probes
}

fn states_for(kind: EngineKind) -> Vec<ResidenceKind> {
    let fullnesses = [Fullness::Empty, Fullness::Holder, Fullness::Full];
    let mut states = Vec::new();
    for &f in &fullnesses {
        states.push(ResidenceKind::Switch(f, Protocol::Normal));
        states.push(ResidenceKind::Switch(f, Protocol::Draining));
        match kind {
            EngineKind::Fcfs => {
                // Overflow and queue-while-suppressed both require the
                // q1/q2 machinery, which only the FCFS engine implements.
                states.push(ResidenceKind::Switch(f, Protocol::Overflow));
                states.push(ResidenceKind::Switch(f, Protocol::Suppressed));
            }
            EngineKind::Priority => {
                // Suppressed acquires are dropped from the queue path on
                // the priority engine, so fullness is only realizable as
                // Empty; enumerate that single state.
                if f == Fullness::Empty {
                    states.push(ResidenceKind::Switch(f, Protocol::Suppressed));
                }
            }
        }
    }
    states.push(ResidenceKind::Server);
    states.push(ResidenceKind::UnknownUnrouted);
    states.push(ResidenceKind::UnknownRouted);
    states
}

/// Explore one engine variant exhaustively. Returns coverage counters,
/// or the first discipline violation found.
pub fn explore(kind: EngineKind) -> Result<ExplorationSummary, ExplorationError> {
    let sink = new_sink();
    let mut summary = ExplorationSummary {
        engine: kind,
        states: 0,
        probes: 0,
        probes_by_kind: BTreeMap::new(),
        max_resubmit_by_kind: BTreeMap::new(),
        stats: TraceStats::default(),
    };
    let bound = fresh_dp(kind).layout().resubmit_bound();
    for state in states_for(kind) {
        summary.states += 1;
        for (name, msg) in probes_for(state) {
            let mut dp = build_state(kind, state, &sink);
            let setup_trace = sink.lock().unwrap().take();
            let setup_stats =
                check_discipline(&setup_trace, bound).map_err(|violation| ExplorationError {
                    state: format!("{state:?}"),
                    probe: "setup",
                    violation,
                })?;
            dp.process_collect(msg, 0);
            let probe_trace = sink.lock().unwrap().take();
            let probe_stats =
                check_discipline(&probe_trace, bound).map_err(|violation| ExplorationError {
                    state: format!("{state:?}"),
                    probe: name,
                    violation,
                })?;
            summary.stats.merge(&setup_stats);
            summary.stats.merge(&probe_stats);
            summary.probes += 1;
            *summary.probes_by_kind.entry(name).or_insert(0) += 1;
            let deepest = summary.max_resubmit_by_kind.entry(name).or_insert(0);
            *deepest = (*deepest).max(probe_stats.max_resubmit_depth);
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fcfs_state_space_has_expected_shape() {
        let states = states_for(EngineKind::Fcfs);
        // 3 fullness × 4 protocols + server + 2 unknown.
        assert_eq!(states.len(), 15);
    }

    #[test]
    fn priority_state_space_has_expected_shape() {
        let states = states_for(EngineKind::Priority);
        // 3 fullness × {normal, draining} + 1 suppressed + server + 2 unknown.
        assert_eq!(states.len(), 10);
    }

    #[test]
    fn probes_withhold_push_at_full_region() {
        let full = probes_for(ResidenceKind::Switch(Fullness::Full, Protocol::Normal));
        let nonempty_push = full.iter().any(|(n, m)| {
            *n == "Push" && matches!(m, NetLockMsg::Push { reqs, .. } if !reqs.is_empty())
        });
        assert!(!nonempty_push, "server must not push past advertised space");
        let empty_push = full.iter().any(|(n, _)| *n == "Push");
        assert!(empty_push, "the Push kind itself is still probed");
    }

    #[test]
    fn overflow_state_is_actually_in_overflow() {
        let sink = new_sink();
        let dp = build_state(
            EngineKind::Fcfs,
            ResidenceKind::Switch(Fullness::Empty, Protocol::Overflow),
            &sink,
        );
        assert!(dp.overflow_active(0));
    }

    #[test]
    fn suppressed_state_is_actually_suppressed() {
        let sink = new_sink();
        let dp = build_state(
            EngineKind::Fcfs,
            ResidenceKind::Switch(Fullness::Full, Protocol::Suppressed),
            &sink,
        );
        assert!(dp.handback_suppressed(SWITCH_LOCK));
        assert_eq!(dp.stats().grants_immediate, 0, "no grants while suppressed");
    }
}
