//! Static feasibility analysis for the switch data plane.
//!
//! The simulator in this crate models a Tofino-style pipeline, but
//! nothing in the simulator itself stops a change from quietly relying
//! on hardware that does not exist — a second stateful-ALU access to
//! the same register array within one pass, a stage ordering the
//! pipeline cannot express, or more SRAM than a stage carries. This
//! module makes those constraints checkable:
//!
//! * [`trace`] — an access-trace recorder hooked into
//!   [`crate::register::Pass`] / [`crate::register::RegisterArray`],
//!   plus [`trace::check_discipline`], which validates recorded traces
//!   against the §4.2 hardware discipline (one access per array per
//!   pass, ascending stage order, bounded resubmit depth).
//! * [`layout`] — a static resource model: every engine registers its
//!   register arrays into a [`layout::ProgramLayout`] at construction,
//!   which can be checked against a [`layout::TofinoBudget`] (stage
//!   count, per-stage SRAM, resubmit bound) and rendered as a
//!   human-readable resource report.
//! * [`explorer`] — an exhaustive path explorer that enumerates
//!   data-plane states × every [`netlock_proto::NetLockMsg`] kind,
//!   runs the real [`crate::dataplane::DataPlane::process`], and
//!   asserts every resulting trace satisfies the discipline.

//!
//! The packet-transaction verifier ([`crate::txn::verify`]) reuses
//! [`layout`] and [`trace::check_discipline`] as its ground truth, so
//! the declarative IR and the hand-written engines are held to the same
//! hardware model.

#![deny(missing_docs)]

pub mod explorer;
pub mod layout;
pub mod trace;
