//! Access-trace recording and the pass-discipline checker.
//!
//! A [`TraceSink`] can be attached to a [`crate::engine::PassAllocator`]
//! (or to an individual [`crate::register::Pass`]); every data-plane
//! read-modify-write then appends an [`AccessRecord`] describing which
//! array was touched, in which stage, at which index, during which pass,
//! and at what resubmit depth. [`check_discipline`] replays a trace and
//! verifies the §4.2 hardware constraints *independently* of the runtime
//! assertions in [`crate::register::RegisterArray::access`]:
//!
//! 1. at most one access per register array per pass (one stateful-ALU
//!    operation per array per packet traversal),
//! 2. non-decreasing stage order within a pass,
//! 3. resubmit depth bounded by the program's declared worst case.
//!
//! Control-plane (`cp_*`) operations are deliberately invisible to the
//! trace: they travel over PCIe, not through the pipeline.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use crate::register::{ArrayId, PassId};

/// One data-plane register access, as observed by the recorder.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AccessRecord {
    /// Unique identity of the accessed array instance.
    pub array: ArrayId,
    /// The array's (non-unique) display name.
    pub name: &'static str,
    /// Pipeline stage the array lives in.
    pub stage: usize,
    /// Cell index accessed.
    pub index: usize,
    /// The pass (packet traversal) performing the access.
    pub pass: PassId,
    /// Resubmit depth of that pass (0 = original packet).
    pub resubmit_depth: u32,
}

/// An append-only buffer of access records.
#[derive(Debug, Default)]
pub struct TraceBuffer {
    records: Vec<AccessRecord>,
}

impl TraceBuffer {
    /// Append one record.
    pub fn record(&mut self, r: AccessRecord) {
        self.records.push(r);
    }

    /// Drain and return everything recorded so far.
    pub fn take(&mut self) -> Vec<AccessRecord> {
        std::mem::take(&mut self.records)
    }

    /// Records currently buffered.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing has been recorded since the last [`Self::take`].
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// Shared handle to a [`TraceBuffer`]; clone it freely — all clones feed
/// the same buffer. The data plane itself is single-threaded (as is the
/// switch pipeline being modeled), but the node that owns it must be
/// `Send` so a partitioned simulation can advance it on a worker thread
/// — hence `Arc<Mutex<..>>` rather than `Rc<RefCell<..>>`. The lock is
/// uncontended in every use (one rack's accesses are serialized by its
/// simulator), so the cost is one atomic per recorded access, and only
/// when tracing is enabled at all.
pub type TraceSink = Arc<Mutex<TraceBuffer>>;

/// A fresh, empty sink.
pub fn new_sink() -> TraceSink {
    Arc::new(Mutex::new(TraceBuffer::default()))
}

/// A violation of the pipeline-pass discipline found in a trace.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DisciplineViolation {
    /// An array was accessed twice within one pass: the P4 program would
    /// need a resubmit the model did not perform.
    DoubleAccess {
        /// Name of the offending array.
        name: &'static str,
        /// Stage of the offending array.
        stage: usize,
        /// The pass that accessed it twice.
        pass: PassId,
    },
    /// A pass accessed a stage after already visiting a later stage.
    StageRegression {
        /// Name of the offending array.
        name: &'static str,
        /// The pass that went backwards.
        pass: PassId,
        /// Highest stage visited before the offending access.
        from_stage: usize,
        /// Stage of the offending access.
        to_stage: usize,
    },
    /// A pass ran at a resubmit depth beyond the declared bound.
    ResubmitTooDeep {
        /// Name of the array whose access revealed the over-deep pass.
        name: &'static str,
        /// Stage of that array.
        stage: usize,
        /// The over-deep pass.
        pass: PassId,
        /// Its resubmit depth.
        depth: u32,
        /// The declared bound it exceeded.
        bound: u32,
    },
}

impl fmt::Display for DisciplineViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DisciplineViolation::DoubleAccess { name, stage, pass } => write!(
                f,
                "DoubleAccess: array '{name}' (stage {stage}) accessed twice in \
                 pass {pass:?}"
            ),
            DisciplineViolation::StageRegression {
                name,
                pass,
                from_stage,
                to_stage,
            } => write!(
                f,
                "StageRegression: array '{name}' (stage {to_stage}) accessed after \
                 stage {from_stage} in pass {pass:?}"
            ),
            DisciplineViolation::ResubmitTooDeep {
                name,
                stage,
                pass,
                depth,
                bound,
            } => write!(
                f,
                "ResubmitTooDeep: array '{name}' (stage {stage}) accessed by pass \
                 {pass:?} at resubmit depth {depth}, exceeding the declared bound {bound}"
            ),
        }
    }
}

impl std::error::Error for DisciplineViolation {}

/// Aggregate statistics of a checked trace.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TraceStats {
    /// Distinct passes observed (passes touching no register are not
    /// visible to the recorder and are not counted).
    pub passes: usize,
    /// Total register accesses.
    pub accesses: usize,
    /// Deepest resubmit depth observed.
    pub max_resubmit_depth: u32,
    /// `depth -> number of passes that ran at that depth`.
    pub resubmit_histogram: BTreeMap<u32, u64>,
}

impl TraceStats {
    /// Merge another stats block into this one (histograms add up;
    /// depths take the max).
    pub fn merge(&mut self, other: &TraceStats) {
        self.passes += other.passes;
        self.accesses += other.accesses;
        self.max_resubmit_depth = self.max_resubmit_depth.max(other.max_resubmit_depth);
        for (&d, &n) in &other.resubmit_histogram {
            *self.resubmit_histogram.entry(d).or_insert(0) += n;
        }
    }
}

/// Check a trace against the pass discipline; `resubmit_bound` is the
/// program's declared worst-case resubmit depth.
pub fn check_discipline(
    records: &[AccessRecord],
    resubmit_bound: u32,
) -> Result<TraceStats, DisciplineViolation> {
    struct PassState {
        seen: Vec<ArrayId>,
        stage_cursor: usize,
        depth: u32,
    }
    let mut passes: BTreeMap<u64, PassState> = BTreeMap::new();
    for r in records {
        let st = passes.entry(r.pass.0).or_insert(PassState {
            seen: Vec::new(),
            stage_cursor: 0,
            depth: r.resubmit_depth,
        });
        if st.seen.contains(&r.array) {
            return Err(DisciplineViolation::DoubleAccess {
                name: r.name,
                stage: r.stage,
                pass: r.pass,
            });
        }
        if r.stage < st.stage_cursor {
            return Err(DisciplineViolation::StageRegression {
                name: r.name,
                pass: r.pass,
                from_stage: st.stage_cursor,
                to_stage: r.stage,
            });
        }
        if r.resubmit_depth > resubmit_bound {
            return Err(DisciplineViolation::ResubmitTooDeep {
                name: r.name,
                stage: r.stage,
                pass: r.pass,
                depth: r.resubmit_depth,
                bound: resubmit_bound,
            });
        }
        st.seen.push(r.array);
        st.stage_cursor = r.stage;
    }
    let mut stats = TraceStats {
        passes: passes.len(),
        accesses: records.len(),
        ..TraceStats::default()
    };
    for st in passes.values() {
        stats.max_resubmit_depth = stats.max_resubmit_depth.max(st.depth);
        *stats.resubmit_histogram.entry(st.depth).or_insert(0) += 1;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(array: u32, stage: usize, pass: u64, depth: u32) -> AccessRecord {
        AccessRecord {
            array: ArrayId(array),
            name: "r",
            stage,
            index: 0,
            pass: PassId(pass),
            resubmit_depth: depth,
        }
    }

    #[test]
    fn clean_trace_passes_with_stats() {
        let t = vec![
            rec(1, 0, 1, 0),
            rec(2, 1, 1, 0),
            rec(1, 0, 2, 1),
            rec(3, 2, 2, 1),
        ];
        let s = check_discipline(&t, 4).unwrap();
        assert_eq!(s.passes, 2);
        assert_eq!(s.accesses, 4);
        assert_eq!(s.max_resubmit_depth, 1);
        assert_eq!(s.resubmit_histogram.get(&0), Some(&1));
        assert_eq!(s.resubmit_histogram.get(&1), Some(&1));
    }

    #[test]
    fn double_access_detected() {
        let t = vec![rec(1, 0, 1, 0), rec(1, 0, 1, 0)];
        assert!(matches!(
            check_discipline(&t, 4),
            Err(DisciplineViolation::DoubleAccess { .. })
        ));
    }

    #[test]
    fn stage_regression_detected() {
        let t = vec![rec(1, 3, 1, 0), rec(2, 1, 1, 0)];
        assert!(matches!(
            check_discipline(&t, 4),
            Err(DisciplineViolation::StageRegression {
                from_stage: 3,
                to_stage: 1,
                ..
            })
        ));
    }

    #[test]
    fn resubmit_bound_enforced() {
        let t = vec![rec(1, 0, 1, 5)];
        assert!(matches!(
            check_discipline(&t, 4),
            Err(DisciplineViolation::ResubmitTooDeep {
                depth: 5,
                bound: 4,
                ..
            })
        ));
        assert!(check_discipline(&t, 5).is_ok());
    }

    #[test]
    fn same_name_different_arrays_same_stage_ok() {
        // Two distinct arrays may share a name and a stage ("slots" in
        // two pooled stages collapses to this after packing); identity
        // is per-instance.
        let t = vec![rec(1, 2, 1, 0), rec(2, 2, 1, 0)];
        assert!(check_discipline(&t, 0).is_ok());
    }

    #[test]
    fn violation_messages_name_array_and_stage() {
        // Pinned format: every violation message must identify the
        // offending array by name AND its stage index, so a failing
        // feasibility test is diagnosable without a debugger.
        let mut r = rec(1, 3, 7, 0);
        r.name = "tail";
        let double = check_discipline(&[r, r], 4).unwrap_err();
        assert_eq!(
            double.to_string(),
            "DoubleAccess: array 'tail' (stage 3) accessed twice in pass PassId(7)"
        );

        let mut early = rec(2, 1, 7, 0);
        early.name = "count";
        let regress = check_discipline(&[r, early], 4).unwrap_err();
        assert_eq!(
            regress.to_string(),
            "StageRegression: array 'count' (stage 1) accessed after stage 3 in \
             pass PassId(7)"
        );

        let mut deep = rec(3, 2, 9, 6);
        deep.name = "slots";
        let too_deep = check_discipline(&[deep], 4).unwrap_err();
        assert_eq!(
            too_deep.to_string(),
            "ResubmitTooDeep: array 'slots' (stage 2) accessed by pass PassId(9) \
             at resubmit depth 6, exceeding the declared bound 4"
        );
    }

    #[test]
    fn sink_collects_and_drains() {
        let sink = new_sink();
        sink.lock().unwrap().record(rec(1, 0, 1, 0));
        assert_eq!(sink.lock().unwrap().len(), 1);
        let taken = sink.lock().unwrap().take();
        assert_eq!(taken.len(), 1);
        assert!(sink.lock().unwrap().is_empty());
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = check_discipline(&[rec(1, 0, 1, 0)], 4).unwrap();
        let b = check_discipline(&[rec(1, 0, 2, 2), rec(2, 1, 2, 2)], 4).unwrap();
        a.merge(&b);
        assert_eq!(a.passes, 2);
        assert_eq!(a.accesses, 3);
        assert_eq!(a.max_resubmit_depth, 2);
        assert_eq!(a.resubmit_histogram.get(&2), Some(&1));
    }
}
