//! Static resource model: what the program asks of the ASIC.
//!
//! Every register array the switch program allocates is registered into a
//! [`ProgramLayout`] when the engine is constructed (see
//! [`crate::dataplane::DataPlane::layout`]). The layout can then be
//! checked against a [`TofinoBudget`] — a Tofino-class resource envelope
//! — and rendered as a human-readable [`ResourceReport`].
//!
//! Stage accounting: the logical stage indices in this crate encode
//! *ordering constraints* (an access to stage `j` must precede one to
//! stage `k > j` within a pass), not physical MAU slots. The P4 compiler
//! packs logical stages densely into consecutive physical stages, so
//! feasibility compares the number of *distinct occupied* stage indices
//! against the stages the hardware offers. SRAM is charged per occupied
//! stage, since arrays sharing a logical index end up sharing a physical
//! stage.

use std::collections::BTreeMap;
use std::fmt;

use super::trace::TraceStats;
use crate::register::RegisterArray;

/// Description of one register array as registered into the layout.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ArrayDescriptor {
    /// Display name.
    pub name: &'static str,
    /// Logical pipeline stage.
    pub stage: usize,
    /// Number of cells.
    pub cells: usize,
    /// On-chip bytes per cell (the paper's accounting: 20 B slots).
    pub bytes_per_cell: usize,
}

impl ArrayDescriptor {
    /// Total SRAM footprint of this array.
    pub fn bytes(&self) -> usize {
        self.cells * self.bytes_per_cell
    }
}

/// A Tofino-class resource envelope.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TofinoBudget {
    /// Match-action stages available to the program.
    pub stages: usize,
    /// SRAM bytes available per stage.
    pub sram_per_stage_bytes: usize,
    /// Maximum resubmit depth the deployment tolerates (each resubmit is
    /// a full extra pipeline traversal, so this bounds per-packet work).
    pub max_resubmit_depth: u32,
}

impl TofinoBudget {
    /// A first-generation Tofino profile: 12 MAU stages per direction,
    /// ingress and egress both traversed (24 schedulable stages), 80
    /// SRAM blocks of 16 KiB per stage. The resubmit bound is sized for
    /// the paper's largest queue region (Algorithm 2's release cascade
    /// resubmits at most once per queued entry).
    pub fn tofino() -> TofinoBudget {
        TofinoBudget {
            stages: 24,
            sram_per_stage_bytes: 80 * 16 * 1024,
            max_resubmit_depth: 100_001,
        }
    }

    /// A single-direction profile (12 stages), for programs that must
    /// fit entirely in ingress *or* egress — NetLock's lock module is
    /// egress-side (§4.2), so the FCFS engine is checked against this.
    pub fn tofino_single_direction() -> TofinoBudget {
        TofinoBudget {
            stages: 12,
            ..TofinoBudget::tofino()
        }
    }
}

/// A named feasibility diagnostic from [`ProgramLayout::check`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FeasibilityError {
    /// The program occupies more distinct stages than the budget offers.
    StageBudgetExceeded {
        /// Distinct stages the program occupies.
        used: usize,
        /// Stages available.
        budget: usize,
    },
    /// One stage's arrays outgrow its SRAM.
    SramBudgetExceeded {
        /// The over-full (logical) stage.
        stage: usize,
        /// Bytes the stage's arrays need.
        bytes: usize,
        /// Bytes available per stage.
        budget: usize,
    },
    /// The program's declared worst-case resubmit depth exceeds the
    /// deployment bound.
    ResubmitBudgetExceeded {
        /// Declared worst-case depth.
        declared: u32,
        /// Tolerated depth.
        budget: u32,
    },
}

impl fmt::Display for FeasibilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FeasibilityError::StageBudgetExceeded { used, budget } => write!(
                f,
                "StageBudgetExceeded: program occupies {used} stages, budget is {budget}"
            ),
            FeasibilityError::SramBudgetExceeded {
                stage,
                bytes,
                budget,
            } => write!(
                f,
                "SramBudgetExceeded: stage {stage} needs {bytes} B of SRAM, budget is {budget} B"
            ),
            FeasibilityError::ResubmitBudgetExceeded { declared, budget } => write!(
                f,
                "ResubmitBudgetExceeded: program declares resubmit depth {declared}, \
                 budget is {budget}"
            ),
        }
    }
}

impl std::error::Error for FeasibilityError {}

/// Per-stage usage, as summed by [`ProgramLayout::stage_usage`].
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct StageUsage {
    /// Names of the arrays in this stage.
    pub arrays: Vec<&'static str>,
    /// Their combined SRAM footprint.
    pub bytes: usize,
}

/// The full static description of a switch program's register resources.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ProgramLayout {
    arrays: Vec<ArrayDescriptor>,
    resubmit_bound: u32,
}

impl ProgramLayout {
    /// An empty layout.
    pub fn new() -> ProgramLayout {
        ProgramLayout::default()
    }

    /// Register an array by explicit descriptor.
    pub fn register(&mut self, d: ArrayDescriptor) {
        self.arrays.push(d);
    }

    /// Register a live [`RegisterArray`] with its on-chip cell width.
    ///
    /// The width is passed explicitly rather than taken from
    /// `size_of::<T>()` because the model's in-memory representation is
    /// wider than the packed wire/SRAM layout (e.g. 20 B queue slots).
    pub fn register_array<T: Copy>(&mut self, arr: &RegisterArray<T>, bytes_per_cell: usize) {
        self.register(ArrayDescriptor {
            name: arr.name(),
            stage: arr.stage(),
            cells: arr.len(),
            bytes_per_cell,
        });
    }

    /// Declare (raise) the program's worst-case resubmit depth.
    pub fn declare_resubmit_bound(&mut self, bound: u32) {
        self.resubmit_bound = self.resubmit_bound.max(bound);
    }

    /// The declared worst-case resubmit depth.
    pub fn resubmit_bound(&self) -> u32 {
        self.resubmit_bound
    }

    /// All registered arrays.
    pub fn arrays(&self) -> &[ArrayDescriptor] {
        &self.arrays
    }

    /// Usage per occupied logical stage, ascending.
    pub fn stage_usage(&self) -> BTreeMap<usize, StageUsage> {
        let mut map: BTreeMap<usize, StageUsage> = BTreeMap::new();
        for a in &self.arrays {
            let u = map.entry(a.stage).or_default();
            u.arrays.push(a.name);
            u.bytes += a.bytes();
        }
        map
    }

    /// Number of distinct occupied stages (what dense packing needs).
    pub fn occupied_stages(&self) -> usize {
        self.stage_usage().len()
    }

    /// Total SRAM across all arrays.
    pub fn total_bytes(&self) -> usize {
        self.arrays.iter().map(ArrayDescriptor::bytes).sum()
    }

    /// Check the layout against a budget. Returns the first violation as
    /// a named diagnostic.
    pub fn check(&self, budget: &TofinoBudget) -> Result<(), FeasibilityError> {
        let usage = self.stage_usage();
        if usage.len() > budget.stages {
            return Err(FeasibilityError::StageBudgetExceeded {
                used: usage.len(),
                budget: budget.stages,
            });
        }
        for (&stage, u) in &usage {
            if u.bytes > budget.sram_per_stage_bytes {
                return Err(FeasibilityError::SramBudgetExceeded {
                    stage,
                    bytes: u.bytes,
                    budget: budget.sram_per_stage_bytes,
                });
            }
        }
        if self.resubmit_bound > budget.max_resubmit_depth {
            return Err(FeasibilityError::ResubmitBudgetExceeded {
                declared: self.resubmit_bound,
                budget: budget.max_resubmit_depth,
            });
        }
        Ok(())
    }

    /// Build a renderable report, optionally with observed trace stats
    /// (which contribute the resubmit-depth histogram).
    pub fn report(&self, trace: Option<&TraceStats>) -> ResourceReport {
        ResourceReport {
            layout: self.clone(),
            trace: trace.cloned(),
        }
    }
}

/// Human-readable resource report (the format is documented in the
/// repository README).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ResourceReport {
    layout: ProgramLayout,
    trace: Option<TraceStats>,
}

impl fmt::Display for ResourceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let usage = self.layout.stage_usage();
        writeln!(
            f,
            "program layout: {} arrays in {} stages, {} B SRAM, resubmit bound {}",
            self.layout.arrays().len(),
            usage.len(),
            self.layout.total_bytes(),
            self.layout.resubmit_bound(),
        )?;
        writeln!(f, "{:>5}  {:>6}  {:>10}  arrays", "stage", "count", "sram")?;
        for (stage, u) in &usage {
            writeln!(
                f,
                "{:>5}  {:>6}  {:>8} B  {}",
                stage,
                u.arrays.len(),
                u.bytes,
                u.arrays.join(", ")
            )?;
        }
        if let Some(t) = &self.trace {
            writeln!(
                f,
                "observed: {} passes, {} accesses, max resubmit depth {}",
                t.passes, t.accesses, t.max_resubmit_depth
            )?;
            write!(f, "resubmit histogram:")?;
            for (depth, n) in &t.resubmit_histogram {
                write!(f, " depth {depth} \u{00d7} {n};")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr(name: &'static str, stage: usize, cells: usize, width: usize) -> ArrayDescriptor {
        ArrayDescriptor {
            name,
            stage,
            cells,
            bytes_per_cell: width,
        }
    }

    #[test]
    fn stage_usage_groups_and_sums() {
        let mut l = ProgramLayout::new();
        l.register(arr("a", 0, 4, 4));
        l.register(arr("b", 0, 4, 8));
        l.register(arr("c", 2, 10, 20));
        let u = l.stage_usage();
        assert_eq!(u.len(), 2);
        assert_eq!(u[&0].bytes, 16 + 32);
        assert_eq!(u[&2].bytes, 200);
        assert_eq!(l.occupied_stages(), 2);
        assert_eq!(l.total_bytes(), 248);
    }

    #[test]
    fn within_budget_passes() {
        let mut l = ProgramLayout::new();
        l.register(arr("a", 0, 100, 20));
        l.declare_resubmit_bound(10);
        assert_eq!(l.check(&TofinoBudget::tofino()), Ok(()));
    }

    #[test]
    fn stage_overflow_named() {
        let mut l = ProgramLayout::new();
        for s in 0..30 {
            l.register(arr("a", s, 1, 4));
        }
        assert_eq!(
            l.check(&TofinoBudget::tofino()),
            Err(FeasibilityError::StageBudgetExceeded {
                used: 30,
                budget: 24
            })
        );
    }

    #[test]
    fn sram_overflow_named() {
        let mut l = ProgramLayout::new();
        let budget = TofinoBudget::tofino();
        l.register(arr("big", 3, budget.sram_per_stage_bytes + 1, 1));
        assert_eq!(
            l.check(&budget),
            Err(FeasibilityError::SramBudgetExceeded {
                stage: 3,
                bytes: budget.sram_per_stage_bytes + 1,
                budget: budget.sram_per_stage_bytes,
            })
        );
    }

    #[test]
    fn resubmit_overflow_named() {
        let mut l = ProgramLayout::new();
        l.register(arr("a", 0, 1, 4));
        l.declare_resubmit_bound(u32::MAX);
        assert!(matches!(
            l.check(&TofinoBudget::tofino()),
            Err(FeasibilityError::ResubmitBudgetExceeded { .. })
        ));
    }

    #[test]
    fn declared_bound_only_rises() {
        let mut l = ProgramLayout::new();
        l.declare_resubmit_bound(7);
        l.declare_resubmit_bound(3);
        assert_eq!(l.resubmit_bound(), 7);
    }

    #[test]
    fn report_renders_stages_and_histogram() {
        let mut l = ProgramLayout::new();
        l.register(arr("bounds", 0, 4, 8));
        l.register(arr("slots", 3, 16, 20));
        let mut t = TraceStats {
            passes: 3,
            accesses: 6,
            max_resubmit_depth: 1,
            ..Default::default()
        };
        t.resubmit_histogram.insert(0, 2);
        t.resubmit_histogram.insert(1, 1);
        let s = l.report(Some(&t)).to_string();
        assert!(s.contains("2 stages"), "{s}");
        assert!(s.contains("bounds"), "{s}");
        assert!(s.contains("320 B"), "{s}");
        assert!(s.contains("depth 1"), "{s}");
        // Diagnostics have stable, grep-able names.
        let e = FeasibilityError::StageBudgetExceeded { used: 9, budget: 8 };
        assert!(e.to_string().starts_with("StageBudgetExceeded"));
    }
}
