//! Property tests: the switch FCFS engine (Algorithm 2 over register
//! arrays, with all of Tofino's access constraints) must behave exactly
//! like a plain-Rust reference lock table for any sequence of acquires
//! and releases.
//!
//! The reference model is `netlock_server::LockTable` — written with
//! explicit holder tracking and no hardware constraints — so agreement
//! here is strong evidence Algorithm 2's implicit-grant-state design is
//! correct.

use proptest::prelude::*;

use netlock_proto::{ClientAddr, LockId, LockMode, LockRequest, Priority, TenantId, TxnId};
use netlock_server::{LockTable, TableAcquire};
use netlock_switch::engine::{AcquireOutcome, FcfsEngine, PassAllocator};
use netlock_switch::shared_queue::{SharedQueue, SharedQueueLayout};
use netlock_switch::slot::Slot;

/// A step of the generated workload.
#[derive(Clone, Debug)]
enum Step {
    Acquire {
        lock: u8,
        shared: bool,
    },
    ReleaseOldest {
        lock: u8,
    },
    /// Shared holders may release in any order (§4.2: "these
    /// transactions may not release their locks in the order that the
    /// requests are enqueued"); the switch dequeues the head anyway,
    /// which is correct because shared releases are commutative.
    ReleaseNewest {
        lock: u8,
    },
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..4, any::<bool>()).prop_map(|(lock, shared)| Step::Acquire { lock, shared }),
            (0u8..4).prop_map(|lock| Step::ReleaseOldest { lock }),
            (0u8..4).prop_map(|lock| Step::ReleaseNewest { lock }),
        ],
        1..200,
    )
}

fn req(lock: u8, mode: LockMode, txn: u64) -> LockRequest {
    LockRequest {
        lock: LockId(lock as u32),
        mode,
        txn: TxnId(txn),
        client: ClientAddr(txn as u32),
        tenant: TenantId(0),
        priority: Priority(0),
        issued_at_ns: txn,
    }
}

/// Drives both implementations in lockstep.
struct Harness {
    queue: SharedQueue,
    passes: PassAllocator,
    model: LockTable,
    /// Grant order per lock observed from the engine.
    engine_grants: Vec<(u8, u64)>,
    /// Grant order per lock observed from the model.
    model_grants: Vec<(u8, u64)>,
    /// FIFO of granted txns per lock, engine view (granted = holder).
    holders: Vec<Vec<u64>>,
    next_txn: u64,
}

impl Harness {
    fn new() -> Harness {
        let mut queue = SharedQueue::new(&SharedQueueLayout::small(4, 64, 8));
        for qid in 0..4 {
            queue.cp_set_region(qid, qid as u32 * 64, qid as u32 * 64 + 64);
        }
        Harness {
            queue,
            passes: PassAllocator::new(),
            model: LockTable::new(),
            engine_grants: Vec::new(),
            model_grants: Vec::new(),
            holders: vec![Vec::new(); 4],
            next_txn: 0,
        }
    }

    fn acquire(&mut self, lock: u8, mode: LockMode) {
        let txn = self.next_txn;
        self.next_txn += 1;
        let r = req(lock, mode, txn);
        let engine_out = FcfsEngine::acquire(
            &mut self.queue,
            &mut self.passes,
            lock as usize,
            Slot::from_request(&r),
        );
        let model_out = self.model.acquire(r);
        match (engine_out, model_out) {
            (AcquireOutcome::Granted, TableAcquire::Granted) => {
                self.engine_grants.push((lock, txn));
                self.model_grants.push((lock, txn));
                self.holders[lock as usize].push(txn);
            }
            (AcquireOutcome::Queued, TableAcquire::Queued) => {}
            (e, m) => panic!("acquire divergence on txn {txn}: engine {e:?}, model {m:?}"),
        }
    }

    /// Release a granted holder of `lock`: the oldest (FIFO) or the
    /// newest (out-of-order shared release). The engine dequeues its
    /// queue head either way — anonymity of shared slots makes that
    /// correct — while the model releases the exact transaction.
    fn release_holder(&mut self, lock: u8, newest: bool) {
        let held = &mut self.holders[lock as usize];
        let Some(txn) = (if newest { held.last() } else { held.first() }).copied() else {
            // Nothing held: the engine treats this as spurious; skip.
            return;
        };
        if newest {
            held.pop();
        } else {
            held.remove(0);
        }
        // Determine the released mode from the model's holder set.
        let mode = self
            .model
            .get(LockId(lock as u32))
            .and_then(|st| {
                st.holders()
                    .iter()
                    .find(|h| h.txn == TxnId(txn))
                    .map(|h| h.mode)
            })
            .expect("model must agree the txn holds the lock");
        let mut grants = Vec::new();
        let engine_out = FcfsEngine::release(
            &mut self.queue,
            &mut self.passes,
            lock as usize,
            mode,
            &mut grants,
        );
        assert!(!engine_out.spurious, "engine lost a holder");
        let mut model_granted = Vec::new();
        self.model
            .release(LockId(lock as u32), TxnId(txn), &mut model_granted);
        // Engine grants carry (mode, txn, client); compare txn ids.
        let engine_granted: Vec<u64> = grants.iter().map(|s| s.txn.0).collect();
        let model_ids: Vec<u64> = model_granted.iter().map(|r| r.txn.0).collect();
        assert_eq!(
            engine_granted, model_ids,
            "release of txn {txn} on lock {lock}: grant sets diverge"
        );
        for &g in &engine_granted {
            self.engine_grants.push((lock, g));
            self.model_grants.push((lock, g));
            self.holders[lock as usize].push(g);
        }
    }

    fn check_final(&self) {
        assert_eq!(self.engine_grants, self.model_grants);
        // Queue occupancy equals model holders + waiters per lock.
        for lock in 0..4u8 {
            let v = self.queue.cp_region(lock as usize);
            let model_outstanding = self
                .model
                .get(LockId(lock as u32))
                .map(|st| st.outstanding())
                .unwrap_or(0);
            assert_eq!(
                v.count as usize, model_outstanding,
                "lock {lock}: queue count vs model outstanding"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// For any workload, the data-plane engine and the reference lock
    /// table grant the same transactions in the same order and agree on
    /// outstanding counts.
    #[test]
    fn engine_matches_reference_model(steps in steps()) {
        let mut h = Harness::new();
        for step in steps {
            match step {
                Step::Acquire { lock, shared } => {
                    let mode = if shared { LockMode::Shared } else { LockMode::Exclusive };
                    h.acquire(lock, mode);
                }
                Step::ReleaseOldest { lock } => h.release_holder(lock, false),
                Step::ReleaseNewest { lock } => h.release_holder(lock, true),
            }
        }
        h.check_final();
    }

    /// Safety invariant, engine-only: at any point, a lock's queue never
    /// holds more than its capacity, and the exclusive counter matches
    /// the actual queue contents.
    #[test]
    fn excl_counter_is_exact(steps in steps()) {
        let mut h = Harness::new();
        for step in steps {
            match step {
                Step::Acquire { lock, shared } => {
                    let mode = if shared { LockMode::Shared } else { LockMode::Exclusive };
                    h.acquire(lock, mode);
                }
                Step::ReleaseOldest { lock } => h.release_holder(lock, false),
                Step::ReleaseNewest { lock } => h.release_holder(lock, true),
            }
            for qid in 0..4 {
                let v = h.queue.cp_region(qid);
                prop_assert!(v.count <= v.capacity());
                let entries = h.queue.cp_entries(qid);
                let excl = entries.iter().filter(|s| s.mode == LockMode::Exclusive).count();
                prop_assert_eq!(v.excl as usize, excl, "excl register drifted");
            }
        }
    }
}
