//! Differential fuzzing of the transaction lowering ("Testing
//! Compilers for Programmable Switches", PAPERS.md).
//!
//! Each case draws a seeded random `TxnProgram` plus a packet sequence,
//! compiles the program through the static verifier, and — when the
//! verifier accepts — runs every packet through both the lowered
//! stage-by-stage executor and the one-shot reference interpreter,
//! asserting identical emitted actions and identical final register
//! state. The lowered run also records its real access trace and
//! replays it through `check_discipline`, so the verifier's *static*
//! stage assignment is checked against the *runtime* ground truth on
//! every accepted program. Rejected programs must be rejected
//! deterministically with a stable classification.
//!
//! Case count defaults to 256 (CI's fuzz-smoke budget); set
//! `TXN_FUZZ_CASES` to run more (the acceptance sweep uses 10000).

use netlock_switch::analysis::layout::TofinoBudget;
use netlock_switch::analysis::trace::{check_discipline, new_sink};
use netlock_switch::txn::corpus::RejectKind;
use netlock_switch::txn::{gen, verify, LoweredTxn, TxnError, TxnInterpreter};
use proptest::prelude::*;

fn cases() -> u32 {
    std::env::var("TXN_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// Run one differential case. Returns whether the program verified.
fn differential(seed: u64) -> bool {
    let program = gen::program(seed);
    let budget = TofinoBudget::tofino_single_direction();
    let mut lowered = match LoweredTxn::compile(program.clone(), &budget) {
        Err(err) => {
            assert!(
                !matches!(err, TxnError::Discipline(_)),
                "seed {seed}: verifier accepted a stage assignment its own \
                 ground-truth check rejects: {err}"
            );
            // Rejection must be deterministic and stably classified.
            let again = verify(program, &budget).expect_err("rejection must be deterministic");
            assert_eq!(
                RejectKind::of(&err),
                RejectKind::of(&again),
                "seed {seed}: unstable rejection class"
            );
            return false;
        }
        Ok(lowered) => lowered,
    };

    let sink = new_sink();
    lowered.set_trace_sink(Some(sink.clone()));
    let mut interp = TxnInterpreter::new(&program);
    let packets = gen::packets(seed, program.num_fields, 16);
    let (mut got, mut want) = (Vec::new(), Vec::new());
    for packet in &packets {
        got.clear();
        want.clear();
        lowered.run(packet, &mut got);
        interp.run(&program, packet, &mut want);
        assert_eq!(
            got, want,
            "seed {seed}: action divergence on packet {packet:?}\nprogram: {program:?}"
        );
    }
    assert_eq!(
        lowered.dump(),
        interp.dump(),
        "seed {seed}: register-state divergence\nprogram: {program:?}"
    );

    // Runtime ground truth: the trace the lowered execution actually
    // produced satisfies the hardware discipline the verifier promised.
    let records = sink.lock().unwrap().take();
    check_discipline(&records, program.max_recirculations)
        .unwrap_or_else(|v| panic!("seed {seed}: runtime trace violates discipline: {v}"));
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// The lowered executor and the reference interpreter agree on
    /// every accepted random program.
    #[test]
    fn lowered_executor_matches_interpreter(seed in any::<u64>()) {
        differential(seed);
    }
}

/// A fixed-seed sweep pinning the generator's accept/reject mix: most
/// programs must verify (the differential check actually exercises the
/// executor) while rejection paths stay represented.
#[test]
fn fixed_seed_sweep_covers_accept_and_reject() {
    let mut verified = 0u32;
    let mut rejected = 0u32;
    for seed in 0..512 {
        if differential(seed) {
            verified += 1;
        } else {
            rejected += 1;
        }
    }
    assert!(
        verified >= 300,
        "only {verified}/512 generated programs verified; the differential \
         check is starving"
    );
    assert!(
        rejected >= 20,
        "only {rejected}/512 generated programs rejected; the verifier's \
         error paths are not being fuzzed"
    );
}

/// The NetLock grant-path program itself is differential-clean under
/// adversarial packet values (field 0 is only meaningfully 0/1, but the
/// transaction must not diverge even on garbage).
#[test]
fn netlock_grant_program_is_differential_clean() {
    for cap in [1u32, 2, 3, 7] {
        let program = netlock_switch::txn::netlock::fcfs_enqueue_program(cap);
        let budget = TofinoBudget::tofino_single_direction();
        let mut lowered = LoweredTxn::compile(program.clone(), &budget).unwrap();
        let mut interp = TxnInterpreter::new(&program);
        let (mut got, mut want) = (Vec::new(), Vec::new());
        for packet in gen::packets(u64::from(cap), program.num_fields, 64) {
            got.clear();
            want.clear();
            lowered.run(&packet, &mut got);
            interp.run(&program, &packet, &mut want);
            assert_eq!(got, want, "cap {cap}: divergence on packet {packet:?}");
        }
        assert_eq!(lowered.dump(), interp.dump(), "cap {cap}: state divergence");
    }
}
