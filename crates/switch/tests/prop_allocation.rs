//! Property tests for Algorithm 3: optimality against exhaustive search
//! on small instances (the paper's Theorem 1), feasibility on all
//! instances, and dominance over the random strawman.

use proptest::prelude::*;

use netlock_proto::LockId;
use netlock_switch::control::{
    knapsack_allocate, knapsack_allocate_bounded, random_allocate, LockStats,
};

fn arb_stats(max_locks: usize, max_c: u32) -> impl Strategy<Value = Vec<LockStats>> {
    prop::collection::vec((1u32..1000, 1u32..max_c), 1..max_locks).prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(i, (rate, c))| LockStats {
                lock: LockId(i as u32),
                rate: rate as f64,
                contention: c,
                home_server: i % 3,
            })
            .collect()
    })
}

/// Exhaustive optimum of the integer allocation problem.
fn brute_force(stats: &[LockStats], capacity: u32) -> f64 {
    fn rec(i: usize, left: u32, acc: f64, stats: &[LockStats], best: &mut f64) {
        if i == stats.len() {
            *best = best.max(acc);
            return;
        }
        // Optimality of greedy per-lock: either allocate fully (up to
        // min(left, c)) or any partial amount; value is linear in s, so
        // only s = 0 and s = min(left, c) matter... except capacity
        // coupling; enumerate all s to be exhaustive.
        for s in 0..=stats[i].contention.min(left) {
            rec(
                i + 1,
                left - s,
                acc + stats[i].rate * s as f64 / stats[i].contention as f64,
                stats,
                best,
            );
        }
    }
    let mut best = 0.0;
    rec(0, capacity, 0.0, stats, &mut best);
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Theorem 1: the greedy allocation attains the exhaustive optimum.
    #[test]
    fn greedy_is_optimal(stats in arb_stats(5, 6), capacity in 0u32..16) {
        let greedy = knapsack_allocate(&stats, capacity).objective(&stats);
        let best = brute_force(&stats, capacity);
        prop_assert!((greedy - best).abs() < 1e-9, "greedy {} vs optimal {}", greedy, best);
    }

    /// Feasibility on any instance: capacity and per-lock bounds hold,
    /// every lock is placed exactly once.
    #[test]
    fn allocation_feasible(stats in arb_stats(50, 64), capacity in 0u32..2000) {
        let alloc = knapsack_allocate(&stats, capacity);
        prop_assert!(alloc.slots_used() <= capacity);
        for &(lock, s, _) in &alloc.in_switch {
            let c = stats.iter().find(|x| x.lock == lock).unwrap().contention;
            prop_assert!(s >= 1 && s <= c);
        }
        prop_assert_eq!(alloc.in_switch.len() + alloc.in_server.len(), stats.len());
        let mut seen: Vec<u32> = alloc
            .in_switch
            .iter()
            .map(|&(l, _, _)| l.0)
            .chain(alloc.in_server.iter().map(|&(l, _)| l.0))
            .collect();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), stats.len(), "every lock placed exactly once");
    }

    /// The region-bounded variant respects its bound and never beats
    /// the unbounded objective.
    #[test]
    fn bounded_respects_regions(stats in arb_stats(40, 16), capacity in 0u32..500, max_regions in 0usize..20) {
        let bounded = knapsack_allocate_bounded(&stats, capacity, max_regions);
        prop_assert!(bounded.in_switch.len() <= max_regions);
        let unbounded = knapsack_allocate(&stats, capacity);
        prop_assert!(bounded.objective(&stats) <= unbounded.objective(&stats) + 1e-9);
    }

    /// Greedy never loses to random (optimality implies dominance).
    #[test]
    fn greedy_dominates_random(stats in arb_stats(30, 16), capacity in 0u32..200, seed in any::<u64>()) {
        let greedy = knapsack_allocate(&stats, capacity).objective(&stats);
        let random = random_allocate(&stats, capacity, seed).objective(&stats);
        prop_assert!(greedy >= random - 1e-9, "greedy {} vs random {}", greedy, random);
    }
}
