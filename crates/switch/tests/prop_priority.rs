//! Property tests for the priority engine's safety invariants: no
//! shared/exclusive co-holding, single exclusive holder, holder
//! registers consistent with granted bits, and liveness (everything
//! eventually granted once traffic stops).

use proptest::prelude::*;

use netlock_proto::{ClientAddr, LockMode, Priority, TenantId, TxnId};
use netlock_switch::engine::{AcquireOutcome, PassAllocator};
use netlock_switch::priority::{PriorityEngine, PriorityLayout};
use netlock_switch::slot::Slot;

#[derive(Clone, Debug)]
enum Step {
    Acquire { shared: bool, prio: u8 },
    ReleaseOne,
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        prop_oneof![
            (any::<bool>(), 0u8..3).prop_map(|(shared, prio)| Step::Acquire { shared, prio }),
            Just(Step::ReleaseOne),
        ],
        1..120,
    )
}

struct Holder {
    txn: u64,
    mode: LockMode,
    prio: u8,
}

struct Harness {
    engine: PriorityEngine,
    passes: PassAllocator,
    holders: Vec<Holder>,
    next_txn: u64,
    outstanding: usize,
}

impl Harness {
    fn new() -> Harness {
        Harness {
            engine: PriorityEngine::new(&PriorityLayout::new(3, 128, 2)),
            passes: PassAllocator::new(),
            holders: Vec::new(),
            next_txn: 0,
            outstanding: 0,
        }
    }

    fn slot(&mut self, mode: LockMode, prio: u8) -> Slot {
        let txn = self.next_txn;
        self.next_txn += 1;
        Slot {
            valid: true,
            mode,
            txn: TxnId(txn),
            client: ClientAddr(txn as u32),
            tenant: TenantId(0),
            priority: Priority(prio),
            issued_at_ns: 0,
            granted: false,
            granted_at_ns: 0,
        }
    }

    fn acquire(&mut self, shared: bool, prio: u8) {
        let mode = if shared {
            LockMode::Shared
        } else {
            LockMode::Exclusive
        };
        let slot = self.slot(mode, prio);
        let (out, _) = self.engine.acquire(&mut self.passes, 0, slot);
        match out {
            AcquireOutcome::Granted => {
                self.holders.push(Holder {
                    txn: slot.txn.0,
                    mode,
                    prio,
                });
                self.outstanding += 1;
            }
            AcquireOutcome::Queued => {
                self.outstanding += 1;
            }
            AcquireOutcome::Overflow => panic!("regions sized to avoid overflow"),
        }
        self.check_safety();
    }

    fn release_one(&mut self) {
        if self.holders.is_empty() {
            return;
        }
        let h = self.holders.remove(0);
        let mut grants = Vec::new();
        let out = self
            .engine
            .release(&mut self.passes, 0, h.mode, h.prio, 0, &mut grants);
        assert!(!out.spurious, "engine lost holder {}", h.txn);
        self.outstanding -= 1;
        for g in &grants {
            self.holders.push(Holder {
                txn: g.txn.0,
                mode: g.mode,
                prio: g.priority.0,
            });
        }
        self.check_safety();
    }

    fn check_safety(&self) {
        let shared = self
            .holders
            .iter()
            .filter(|h| h.mode == LockMode::Shared)
            .count();
        let excl = self
            .holders
            .iter()
            .filter(|h| h.mode == LockMode::Exclusive)
            .count();
        assert!(excl <= 1, "two exclusive holders");
        assert!(
            excl == 0 || shared == 0,
            "shared and exclusive co-held: {shared} S + {excl} X"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Safety under arbitrary interleavings of priorities and modes.
    #[test]
    fn mutual_exclusion_across_priorities(steps in steps()) {
        let mut h = Harness::new();
        for step in steps {
            match step {
                Step::Acquire { shared, prio } => h.acquire(shared, prio),
                Step::ReleaseOne => h.release_one(),
            }
        }
    }

    /// Liveness: once acquires stop, draining all holders grants every
    /// queued request exactly once (nothing is stranded).
    #[test]
    fn drain_grants_everything(steps in steps()) {
        let mut h = Harness::new();
        let mut acquired = 0usize;
        for step in steps {
            match step {
                Step::Acquire { shared, prio } => {
                    h.acquire(shared, prio);
                    acquired += 1;
                }
                Step::ReleaseOne => {
                    let before = h.holders.len();
                    h.release_one();
                    let _ = before;
                }
            }
        }
        // Drain: release until nothing is held; every queued request
        // must surface as a grant along the way.
        let mut guard = 0;
        while !h.holders.is_empty() {
            h.release_one();
            guard += 1;
            prop_assert!(guard <= acquired + 1, "drain does not terminate");
        }
        prop_assert_eq!(h.outstanding, 0, "requests stranded in the queues");
        prop_assert_eq!(h.engine.cp_total_count(0), 0, "queues not empty after drain");
    }
}
