//! Property test: the inline action buffer's capacity really is a
//! feasibility envelope, not a tunable. For any sequence of valid
//! NetLock messages — acquires and releases in both modes against a
//! switch-resident lock with the largest region a test layout allows,
//! plus server-resident and unknown locks — `DataPlane::process` never
//! pushes more than `ACTION_BUF_CAP` actions for one packet. The widest
//! single-packet burst Algorithm 2 can produce is the exclusive→shared
//! cascade (one grant per queued shared request, bounded by the region
//! size), so as long as regions fit the shared queue, the buffer can't
//! overflow. Overflow itself panics with a feasibility-style message;
//! the deliberate-overflow unit test lives in `action_buf.rs`.

use proptest::prelude::*;

use netlock_proto::{
    ClientAddr, LockId, LockMode, LockRequest, NetLockMsg, Priority, ReleaseRequest, TenantId,
    TxnId,
};
use netlock_switch::dataplane::{DataPlane, DpAction, Engine};
use netlock_switch::shared_queue::SharedQueueLayout;
use netlock_switch::{ActionBuf, ACTION_BUF_CAP};

/// Region capacity for the contended switch lock: the full 512-slot
/// array, so the X→S cascade is as wide as this layout permits.
const REGION_CAP: u32 = 512;

#[derive(Clone, Debug)]
enum Step {
    /// Acquire on the switch lock (contended path).
    Acquire { shared: bool },
    /// Release the oldest grant we hold (possibly cascading).
    Release,
    /// Traffic against a server-resident lock (forward path).
    ServerAcquire,
    /// Traffic against an unknown lock (drop path).
    UnknownAcquire,
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        prop_oneof![
            any::<bool>().prop_map(|shared| Step::Acquire { shared }),
            Just(Step::Release),
            any::<bool>().prop_map(|shared| Step::Acquire { shared }),
            Just(Step::Release),
            Just(Step::ServerAcquire),
            Just(Step::UnknownAcquire),
        ],
        1..400,
    )
}

fn req(lock: u32, mode: LockMode, txn: u64) -> LockRequest {
    LockRequest {
        lock: LockId(lock),
        mode,
        txn: TxnId(txn),
        client: ClientAddr(txn as u32),
        tenant: TenantId(0),
        priority: Priority(0),
        issued_at_ns: txn,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// No valid message sequence makes one packet exceed the inline
    /// capacity — and the grant fan-out never exceeds the region size
    /// plus the push-protocol notification.
    #[test]
    fn valid_sequences_never_exceed_inline_capacity(ops in steps()) {
        let mut dp = DataPlane::new_fcfs(&SharedQueueLayout::small(1, REGION_CAP as usize, 2));
        match dp.engine_mut() {
            Engine::Fcfs(q) => q.cp_set_region(0, 0, REGION_CAP),
            _ => unreachable!(),
        }
        dp.directory_mut().set_switch_resident(LockId(1), 0, 0);
        dp.directory_mut().set_server_resident(LockId(2), 0);

        let mut out = ActionBuf::new();
        let mut txn = 0u64;
        // (txn, mode) grants outstanding on the switch lock, FIFO.
        let mut held: Vec<(u64, LockMode)> = Vec::new();
        for op in ops {
            txn += 1;
            let msg = match op {
                Step::Acquire { shared } => {
                    let mode = if shared { LockMode::Shared } else { LockMode::Exclusive };
                    NetLockMsg::Acquire(req(1, mode, txn))
                }
                Step::Release => {
                    if held.is_empty() {
                        continue;
                    }
                    let (t, mode) = held.remove(0);
                    NetLockMsg::Release(ReleaseRequest {
                        lock: LockId(1),
                        txn: TxnId(t),
                        mode,
                        client: ClientAddr(t as u32),
                        priority: Priority(0),
                    })
                }
                Step::ServerAcquire => NetLockMsg::Acquire(req(2, LockMode::Shared, txn)),
                Step::UnknownAcquire => NetLockMsg::Acquire(req(99, LockMode::Exclusive, txn)),
            };
            dp.process(msg, txn, &mut out);
            prop_assert!(
                out.len() <= ACTION_BUF_CAP,
                "one packet produced {} actions",
                out.len()
            );
            prop_assert!(
                out.len() <= REGION_CAP as usize + 1,
                "fan-out {} exceeds region bound {}",
                out.len(),
                REGION_CAP + 1
            );
            for act in out.iter() {
                if let DpAction::SendGrant(g) = act {
                    if g.lock == LockId(1) {
                        held.push((g.txn.0, g.mode));
                    }
                }
            }
        }
    }
}
