//! Tier-1 feasibility suite: exhaustive pass-trace checking and the
//! static Tofino resource model.
//!
//! These tests are the enforcement point for the §4.2 hardware
//! discipline. The explorer enumerates data-plane states × every
//! message kind against the real `DataPlane::process`, so a change
//! that sneaks in a second stateful-ALU access to an array within one
//! pass, an out-of-order stage access, or an unbounded resubmit
//! cascade fails here, not in a P4 compiler we do not have.

use netlock_switch::analysis::explorer::{explore, EngineKind};
use netlock_switch::analysis::layout::{
    ArrayDescriptor, FeasibilityError, ProgramLayout, TofinoBudget,
};
use netlock_switch::dataplane::DataPlane;
use netlock_switch::priority::PriorityLayout;
use netlock_switch::shared_queue::SharedQueueLayout;

const ALL_MSG_KINDS: [&str; 12] = [
    "Acquire",
    "Release",
    "Grant",
    "Forwarded",
    "QueueSpace",
    "Push",
    "DbFetch",
    "DbReply",
    "CtrlDemote",
    "CtrlPromote",
    "CtrlPromoteReady",
    "CtrlHandback",
];

#[test]
fn fcfs_exploration_is_discipline_clean() {
    let summary = explore(EngineKind::Fcfs).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(summary.engine, EngineKind::Fcfs);
    assert_eq!(summary.states, 15);
    for kind in ALL_MSG_KINDS {
        assert!(
            summary.probes_by_kind.contains_key(kind),
            "message kind {kind} never probed"
        );
    }
    assert!(summary.stats.passes > 0, "exploration recorded no passes");
    assert!(summary.stats.accesses > 0);
}

#[test]
fn priority_exploration_is_discipline_clean() {
    let summary = explore(EngineKind::Priority).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(summary.engine, EngineKind::Priority);
    assert_eq!(summary.states, 10);
    for kind in ALL_MSG_KINDS {
        assert!(
            summary.probes_by_kind.contains_key(kind),
            "message kind {kind} never probed"
        );
    }
    assert!(summary.stats.passes > 0, "exploration recorded no passes");
}

#[test]
fn observed_resubmit_depth_stays_under_declared_bound() {
    for kind in [EngineKind::Fcfs, EngineKind::Priority] {
        let summary = explore(kind).unwrap_or_else(|e| panic!("{e}"));
        let declared = match kind {
            EngineKind::Fcfs => DataPlane::new_fcfs(&SharedQueueLayout::small(2, 4, 4)),
            EngineKind::Priority => DataPlane::new_priority(&PriorityLayout::new(3, 3, 2)),
        }
        .layout()
        .resubmit_bound();
        // Per-message-kind check: when this fails, the diagnostic names
        // *which* NetLockMsg kind blew the budget, not just that one did.
        for (msg_kind, &depth) in &summary.max_resubmit_by_kind {
            assert!(
                depth <= declared,
                "{kind:?}: {msg_kind} probe reached resubmit depth {depth}, \
                 exceeding declared bound {declared}",
            );
        }
        assert!(
            summary.stats.max_resubmit_depth <= declared,
            "{kind:?}: observed resubmit depth {} exceeds declared bound {declared}",
            summary.stats.max_resubmit_depth,
        );
        // The per-kind map must cover every probed kind, and no probe can
        // exceed the aggregate (which also folds in setup traffic).
        for kind_name in summary.probes_by_kind.keys() {
            assert!(summary.max_resubmit_by_kind.contains_key(kind_name));
        }
        let per_kind_max = summary
            .max_resubmit_by_kind
            .values()
            .copied()
            .max()
            .unwrap_or(0);
        assert!(per_kind_max <= summary.stats.max_resubmit_depth);
    }
}

#[test]
fn partitioned_replicated_layouts_fit_a_tofino() {
    // Multi-switch deployment (DESIGN §16): the lock space is split
    // across 4 partitions, so each chain member carries a quarter of
    // the paper-default slot pool *plus* the chain-replication
    // metadata (sequence/ack/epoch registers and the in-flight log).
    // Every partition's augmented layout must still fit one Tofino —
    // replication that doesn't fit next to the queues is fiction.
    let per_partition = SharedQueueLayout {
        slot_arrays: vec![10_000; 3],
        max_regions: 2_500,
        stage_offset: 0,
    };
    for partition in 0..4 {
        let dp = DataPlane::new_fcfs(&per_partition);
        let layout = netlock_switch::partition::replicated_layout(&dp, 4_096);
        layout
            .check(&TofinoBudget::tofino())
            .unwrap_or_else(|e| panic!("partition {partition} replicated layout must fit: {e}"));
        let names: Vec<&str> = layout.arrays().iter().map(|a| a.name).collect();
        for meta in ["repl_seq", "repl_ack", "repl_epoch", "repl_log"] {
            assert!(names.contains(&meta), "{meta} missing from layout");
        }
    }
}

#[test]
fn paper_default_fcfs_layout_fits_a_tofino() {
    let dp = DataPlane::new_fcfs(&SharedQueueLayout::paper_default());
    dp.layout()
        .check(&TofinoBudget::tofino())
        .unwrap_or_else(|e| panic!("paper-default FCFS layout infeasible: {e}"));
}

#[test]
fn small_fcfs_layout_fits_a_single_direction() {
    let dp = DataPlane::new_fcfs(&SharedQueueLayout::small(2, 4, 4));
    dp.layout()
        .check(&TofinoBudget::tofino_single_direction())
        .unwrap_or_else(|e| panic!("small FCFS layout infeasible: {e}"));
}

#[test]
fn priority_layout_fits_a_tofino() {
    let dp = DataPlane::new_priority(&PriorityLayout::new(3, 3, 2));
    dp.layout()
        .check(&TofinoBudget::tofino())
        .unwrap_or_else(|e| panic!("priority layout infeasible: {e}"));
}

#[test]
fn over_budget_stage_count_is_rejected_with_named_diagnostic() {
    let budget = TofinoBudget::tofino();
    let mut layout = ProgramLayout::new();
    for stage in 0..budget.stages + 1 {
        layout.register(ArrayDescriptor {
            name: "overflowing",
            stage,
            cells: 1,
            bytes_per_cell: 4,
        });
    }
    let err = layout.check(&budget).unwrap_err();
    assert!(
        matches!(err, FeasibilityError::StageBudgetExceeded { .. }),
        "expected StageBudgetExceeded, got {err}"
    );
    assert!(
        err.to_string().starts_with("StageBudgetExceeded"),
        "diagnostic must lead with its name: {err}"
    );
}

#[test]
fn over_budget_sram_is_rejected_with_named_diagnostic() {
    let budget = TofinoBudget::tofino();
    let mut layout = ProgramLayout::new();
    layout.register(ArrayDescriptor {
        name: "sram_hog",
        stage: 0,
        cells: budget.sram_per_stage_bytes + 1,
        bytes_per_cell: 1,
    });
    let err = layout.check(&budget).unwrap_err();
    assert!(
        matches!(err, FeasibilityError::SramBudgetExceeded { stage: 0, .. }),
        "expected SramBudgetExceeded at stage 0, got {err}"
    );
    assert!(err.to_string().starts_with("SramBudgetExceeded"));
}

#[test]
fn over_budget_resubmit_bound_is_rejected_with_named_diagnostic() {
    let budget = TofinoBudget::tofino();
    let mut layout = ProgramLayout::new();
    layout.declare_resubmit_bound(budget.max_resubmit_depth + 1);
    let err = layout.check(&budget).unwrap_err();
    assert!(
        matches!(err, FeasibilityError::ResubmitBudgetExceeded { .. }),
        "expected ResubmitBudgetExceeded, got {err}"
    );
    assert!(err.to_string().starts_with("ResubmitBudgetExceeded"));
}

#[test]
fn resource_report_renders_layout_and_observed_stats() {
    let summary = explore(EngineKind::Fcfs).unwrap_or_else(|e| panic!("{e}"));
    let dp = DataPlane::new_fcfs(&SharedQueueLayout::small(2, 4, 4));
    let report = dp.layout().report(Some(&summary.stats)).to_string();
    assert!(
        report.contains("program layout:"),
        "missing header: {report}"
    );
    assert!(report.contains("resubmit bound"), "missing bound: {report}");
    assert!(
        report.contains("observed:"),
        "missing observed line: {report}"
    );
    assert!(
        report.contains("resubmit histogram:"),
        "missing histogram: {report}"
    );
}
