//! Regression-corpus replay: every fuzzer-found (or handcrafted)
//! transaction under `tests/corpus/` is re-verified against the
//! single-direction budget and, when accepted, differential-executed,
//! so a once-found divergence or misclassification can never silently
//! return. The corpus format round-trips through the serializer, which
//! keeps the files mechanically regenerable from the generator seeds
//! named in their comments.

use netlock_switch::analysis::layout::TofinoBudget;
use netlock_switch::txn::corpus::{parse, to_text, CorpusExpect, RejectKind};
use netlock_switch::txn::{verify, LoweredTxn, TxnInterpreter};
use std::path::PathBuf;

fn corpus_paths() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {}: {e}", dir.display()))
        .map(|entry| entry.unwrap().path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "txt"))
        .collect();
    paths.sort();
    paths
}

#[test]
fn corpus_entries_replay_deterministically() {
    let paths = corpus_paths();
    assert!(paths.len() >= 6, "corpus shrank to {} entries", paths.len());
    let budget = TofinoBudget::tofino_single_direction();
    let mut accepted = 0;
    let mut rejected = 0;
    for path in &paths {
        let name = path.file_name().unwrap().to_string_lossy();
        let text = std::fs::read_to_string(path).unwrap();
        let entry = parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        match entry.expect {
            CorpusExpect::Ok => {
                accepted += 1;
                let mut lowered = LoweredTxn::compile(entry.program.clone(), &budget)
                    .unwrap_or_else(|e| panic!("{name}: expected to verify, got: {e}"));
                let mut interp = TxnInterpreter::new(&entry.program);
                let (mut got, mut want) = (Vec::new(), Vec::new());
                for packet in &entry.packets {
                    got.clear();
                    want.clear();
                    lowered.run(packet, &mut got);
                    interp.run(&entry.program, packet, &mut want);
                    assert_eq!(got, want, "{name}: action divergence on {packet:?}");
                }
                assert_eq!(
                    lowered.dump(),
                    interp.dump(),
                    "{name}: register-state divergence"
                );
            }
            CorpusExpect::Reject(kind) => {
                rejected += 1;
                let err = verify(entry.program.clone(), &budget)
                    .expect_err("expected the verifier to reject");
                assert_eq!(
                    RejectKind::of(&err),
                    kind,
                    "{name}: rejection reclassified (was '{}', now: {err})",
                    kind.token()
                );
            }
        }
        // The serializer must reproduce a parse-identical entry, so
        // corpus files stay regenerable and diffs stay meaningful.
        let reserialized = to_text(&entry.program, &entry.packets, entry.expect);
        let reparsed = parse(&reserialized).unwrap_or_else(|e| panic!("{name} round-trip: {e}"));
        assert_eq!(reparsed, entry, "{name}: serializer round-trip drift");
    }
    assert!(accepted >= 3, "corpus needs accepted programs to execute");
    assert!(
        rejected >= 3,
        "corpus needs rejected programs to pin classes"
    );
}
