//! # netlock-workloads
//!
//! Workload generators for the NetLock experiments:
//! - [`zipf`] — skewed popularity sampling
//! - [`tpcc`] — the TPC-C lock-request generator with the paper's
//!   low-contention (10 warehouses/client) and high-contention
//!   (1 warehouse/client) settings
//!
//! The microbenchmark workloads of Fig. 8/9 need no generator beyond
//! `netlock_core`'s open-loop client: they are uniform draws over a lock
//! set with a fixed mode.

#![warn(missing_docs)]

pub mod skewed;
pub mod tpcc;
pub mod zipf;

pub use skewed::ZipfLockSource;
pub use tpcc::{hot_lock_stats, TpccConfig, TpccSource, TpccTxnKind};
pub use zipf::Zipf;
