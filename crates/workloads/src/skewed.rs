//! Skewed single-lock workloads: Zipf-distributed lock popularity.
//!
//! §4.5: the knapsack allocation "handles skewed workload
//! distributions" — a few hot locks take most of the traffic, so a
//! small switch memory can absorb a large request fraction. This
//! source drives that scenario directly.

use netlock_core::txn::{LockNeed, Transaction, TxnSource};
use netlock_proto::{LockId, LockMode};
use netlock_sim::{SimDuration, SimRng};

use crate::zipf::Zipf;

/// A transaction source drawing one lock per transaction from a
/// Zipf-distributed popularity ranking.
pub struct ZipfLockSource {
    /// Lock id of rank `k` is `base + k`.
    base: u32,
    dist: Zipf,
    mode: LockMode,
    think: SimDuration,
}

impl ZipfLockSource {
    /// A source over locks `[base, base + n)` with Zipf exponent
    /// `theta` (0 = uniform; 0.99 = YCSB-style heavy skew).
    pub fn new(
        base: u32,
        n: usize,
        theta: f64,
        mode: LockMode,
        think: SimDuration,
    ) -> ZipfLockSource {
        ZipfLockSource {
            base,
            dist: Zipf::new(n, theta),
            mode,
            think,
        }
    }

    /// Expected request share of the `k` most popular locks — the
    /// fraction a switch hosting exactly those locks would absorb.
    pub fn head_share(&self, k: usize) -> f64 {
        (0..k.min(self.dist.len())).map(|i| self.dist.mass(i)).sum()
    }

    /// The lock id at popularity rank `k`.
    pub fn lock_at_rank(&self, k: usize) -> LockId {
        LockId(self.base + k as u32)
    }
}

impl TxnSource for ZipfLockSource {
    fn next_txn(&mut self, rng: &mut SimRng) -> Transaction {
        let rank = self.dist.sample(rng);
        Transaction::new(
            vec![LockNeed {
                lock: self.lock_at_rank(rank),
                mode: self.mode,
            }],
            self.think,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_share_is_heavy_under_skew() {
        let src = ZipfLockSource::new(0, 10_000, 0.99, LockMode::Exclusive, SimDuration::ZERO);
        assert!(src.head_share(100) > 0.4, "top 1% should carry >40%");
        let uniform = ZipfLockSource::new(0, 10_000, 0.0, LockMode::Exclusive, SimDuration::ZERO);
        assert!((uniform.head_share(100) - 0.01).abs() < 1e-9);
    }

    #[test]
    fn samples_follow_ranking() {
        let mut src = ZipfLockSource::new(5, 100, 0.99, LockMode::Shared, SimDuration::ZERO);
        let mut rng = SimRng::new(3);
        let mut hot = 0;
        let n = 10_000;
        for _ in 0..n {
            let t = src.next_txn(&mut rng);
            if t.locks[0].lock.0 < 15 {
                hot += 1;
            }
        }
        // Top-10 of 100 at theta .99 carries well over a third.
        assert!(hot as f64 / n as f64 > 0.35, "hot share {hot}/{n}");
    }
}
