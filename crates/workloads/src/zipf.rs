//! Zipfian sampling for skewed lock popularity.
//!
//! Cloud lock workloads are skewed — a few hot rows take most of the
//! traffic — which is exactly why NetLock's knapsack allocation wins
//! over random placement (Fig. 13/14). This sampler uses the classic
//! cumulative-probability table; construction is O(n), sampling is
//! O(log n) via binary search, and everything is driven by the seeded
//! simulation RNG.

use netlock_sim::SimRng;

/// A Zipf(θ) distribution over ranks `0..n` (rank 0 most popular).
#[derive(Clone, Debug)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Distribution over `n` items with exponent `theta` (0 = uniform;
    /// 0.99 is the YCSB default for "heavily skewed").
    pub fn new(n: usize, theta: f64) -> Zipf {
        assert!(n > 0, "need at least one item");
        assert!(theta >= 0.0, "theta must be non-negative");
        let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(theta)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        // Guard against FP drift so sample() can never fall off the end.
        if let Some(last) = weights.last_mut() {
            *last = 1.0;
        }
        Zipf {
            cumulative: weights,
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True if the distribution has exactly one item.
    pub fn is_empty(&self) -> bool {
        false // construction requires n > 0
    }

    /// Draw a rank in `0..n`.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.unit();
        self.cumulative.partition_point(|&c| c < u)
    }

    /// The probability mass of rank `k`.
    pub fn mass(&self, k: usize) -> f64 {
        if k == 0 {
            self.cumulative[0]
        } else {
            self.cumulative[k] - self.cumulative[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.mass(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn skew_orders_masses() {
        let z = Zipf::new(100, 0.99);
        assert!(z.mass(0) > z.mass(1));
        assert!(z.mass(1) > z.mass(10));
        assert!(z.mass(10) > z.mass(99));
        // Head heaviness: top-10 of 100 items takes the majority.
        let head: f64 = (0..10).map(|k| z.mass(k)).sum();
        assert!(head > 0.5, "head mass = {head}");
    }

    #[test]
    fn samples_match_masses() {
        let z = Zipf::new(10, 0.9);
        let mut rng = SimRng::new(42);
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &count) in counts.iter().enumerate() {
            let observed = count as f64 / n as f64;
            let expected = z.mass(k);
            assert!(
                (observed - expected).abs() < 0.01,
                "rank {k}: observed {observed} expected {expected}"
            );
        }
    }

    #[test]
    fn sample_always_in_range() {
        let z = Zipf::new(3, 2.0);
        let mut rng = SimRng::new(7);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    fn single_item() {
        let z = Zipf::new(1, 0.99);
        let mut rng = SimRng::new(1);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.len(), 1);
    }
}
