//! TPC-C as a lock-request generator (§6.1 of the paper).
//!
//! The paper uses TPC-C the way DSLR does: each transaction contributes
//! the set of row locks it would take under two-phase locking, and the
//! two contention settings differ only in warehouse count ("ten
//! warehouses per node" = low contention, "one warehouse per node" =
//! high contention). We generate the same structure:
//!
//! | Txn         | Mix | Locks                                              |
//! |-------------|-----|----------------------------------------------------|
//! | NewOrder    | 45% | warehouse S, district X, customer S, 5–15 stock X, order X |
//! | Payment     | 43% | warehouse X, district X, customer X (15% remote)   |
//! | OrderStatus | 4%  | customer S, order S                                |
//! | Delivery    | 4%  | district X, order X, customer X                    |
//! | StockLevel  | 4%  | district S, 20 stock S                             |
//!
//! Think times reflect in-memory execution (µs scale). Lock IDs are laid
//! out in disjoint regions of the 32-bit lock space (see [`ids`]); lock
//! sets are sorted by the client, so acquisition is deadlock-free.

use netlock_core::prelude::LockStats;
use netlock_core::txn::{LockNeed, Transaction, TxnSource};
use netlock_proto::{LockMode, Priority, TenantId};
use netlock_sim::{SimDuration, SimRng};

/// Lock-id layout for TPC-C entities.
pub mod ids {
    use netlock_proto::LockId;

    /// Warehouses occupy `[0, 10_000)`.
    pub fn warehouse(w: u32) -> LockId {
        debug_assert!(w < 10_000);
        LockId(w)
    }

    /// Districts occupy `[10_000, 110_000)`.
    pub fn district(w: u32, d: u32) -> LockId {
        debug_assert!(d < 10);
        LockId(10_000 + w * 10 + d)
    }

    /// Customers occupy `[1_000_000, 31_000_000)` (3000 per district).
    pub fn customer(w: u32, d: u32, c: u32) -> LockId {
        debug_assert!(c < 3_000);
        LockId(1_000_000 + (w * 10 + d) * 3_000 + c)
    }

    /// Stock rows occupy `[100_000_000, ...)` (100_000 per warehouse).
    pub fn stock(w: u32, i: u32) -> LockId {
        debug_assert!(i < 100_000);
        LockId(100_000_000 + w * 100_000 + i)
    }

    /// Order rows occupy `[2_000_000_000, ...)`, cycling per district.
    pub fn order(w: u32, d: u32, seq: u64) -> LockId {
        LockId(2_000_000_000 + ((w * 10 + d) * 10_000) + (seq % 10_000) as u32)
    }
}

/// TPC-C generator configuration.
#[derive(Clone, Debug)]
pub struct TpccConfig {
    /// Number of warehouses shared by all clients. The paper's settings:
    /// 10 per client machine (low contention), 1 per client machine
    /// (high contention).
    pub warehouses: u32,
    /// First warehouse id. Multi-tenant experiments give each tenant a
    /// disjoint `[warehouse_base, warehouse_base + warehouses)` range —
    /// tenants share the lock manager, not rows.
    pub warehouse_base: u32,
    /// Items in the catalog (stock rows per warehouse).
    pub items: u32,
    /// Stock-lock coarsening: items per stock lock. §4.5's remedy for
    /// uniform distributions — "we combine multiple locks into one
    /// coarse-grained lock to increase the memory utilization". 10 000
    /// turns each warehouse's 100K stock rows into 10 lock buckets the
    /// switch can host with a few thousand slots (the paper's Fig. 14
    /// saturation point); 1 disables coarsening.
    pub stock_granularity: u32,
    /// Scale factor applied to all think times (1.0 = defaults).
    pub think_scale: f64,
    /// If set, every transaction thinks exactly this long, ignoring the
    /// per-type defaults and `think_scale` (the Fig. 14 sweep).
    pub think_override: Option<SimDuration>,
    /// Tenant stamped on every transaction.
    pub tenant: TenantId,
    /// Priority stamped on every transaction.
    pub priority: Priority,
}

impl TpccConfig {
    /// The low-contention setting: ten warehouses per client machine.
    pub fn low_contention(clients: u32) -> TpccConfig {
        TpccConfig {
            warehouses: 10 * clients.max(1),
            ..TpccConfig::default()
        }
    }

    /// The high-contention setting: one warehouse per client machine.
    pub fn high_contention(clients: u32) -> TpccConfig {
        TpccConfig {
            warehouses: clients.max(1),
            ..TpccConfig::default()
        }
    }
}

impl Default for TpccConfig {
    fn default() -> Self {
        TpccConfig {
            warehouses: 10,
            warehouse_base: 0,
            items: 100_000,
            stock_granularity: 10_000,
            think_scale: 1.0,
            think_override: None,
            tenant: TenantId(0),
            priority: Priority(0),
        }
    }
}

/// The five TPC-C transaction types.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TpccTxnKind {
    /// Order placement (45%).
    NewOrder,
    /// Payment against a customer balance (43%).
    Payment,
    /// Read a customer's latest order (4%).
    OrderStatus,
    /// Deliver pending orders (4%).
    Delivery,
    /// Count low-stock items (4%).
    StockLevel,
}

/// The TPC-C transaction source.
pub struct TpccSource {
    cfg: TpccConfig,
    /// Monotone order sequence (order-row lock ids).
    order_seq: u64,
    /// Per-kind counters (workload introspection/tests).
    pub counts: [u64; 5],
}

impl TpccSource {
    /// A generator over `cfg`.
    pub fn new(cfg: TpccConfig) -> TpccSource {
        assert!(cfg.warehouses > 0, "need at least one warehouse");
        assert!(cfg.items > 0, "need at least one item");
        assert!(cfg.stock_granularity > 0, "granularity must be positive");
        TpccSource {
            cfg,
            order_seq: 0,
            counts: [0; 5],
        }
    }

    fn pick_kind(rng: &mut SimRng) -> TpccTxnKind {
        match rng.next_below(100) {
            0..=44 => TpccTxnKind::NewOrder,
            45..=87 => TpccTxnKind::Payment,
            88..=91 => TpccTxnKind::OrderStatus,
            92..=95 => TpccTxnKind::Delivery,
            _ => TpccTxnKind::StockLevel,
        }
    }

    fn think(&self, base_us: u64) -> SimDuration {
        if let Some(t) = self.cfg.think_override {
            return t;
        }
        SimDuration::from_nanos((base_us as f64 * 1_000.0 * self.cfg.think_scale) as u64)
    }

    fn gen_new_order(&mut self, rng: &mut SimRng, w: u32) -> Transaction {
        let d = rng.next_below(10) as u32;
        let c = rng.next_below(3_000) as u32;
        let mut locks = vec![
            LockNeed {
                lock: ids::warehouse(w),
                mode: LockMode::Shared,
            },
            LockNeed {
                lock: ids::district(w, d),
                mode: LockMode::Exclusive,
            },
            LockNeed {
                lock: ids::customer(w, d, c),
                mode: LockMode::Shared,
            },
        ];
        let ol_cnt = 5 + rng.next_below(11); // 5..=15
        for _ in 0..ol_cnt {
            let item = rng.next_below(self.cfg.items as u64) as u32;
            // 1% of order lines hit a remote warehouse's stock.
            let supply_w = if self.cfg.warehouses > 1 && rng.chance(0.01) {
                let base = self.cfg.warehouse_base;
                let mut other = base + rng.next_below(self.cfg.warehouses as u64) as u32;
                if other == w {
                    other = base + (other - base + 1) % self.cfg.warehouses;
                }
                other
            } else {
                w
            };
            locks.push(LockNeed {
                lock: ids::stock(supply_w, item / self.cfg.stock_granularity),
                mode: LockMode::Exclusive,
            });
        }
        self.order_seq += 1;
        locks.push(LockNeed {
            lock: ids::order(w, d, self.order_seq),
            mode: LockMode::Exclusive,
        });
        Transaction::new(locks, self.think(12))
    }

    fn gen_payment(&mut self, rng: &mut SimRng, w: u32) -> Transaction {
        let d = rng.next_below(10) as u32;
        // 15% of payments are for a customer of a remote warehouse.
        let (cw, cd) = if self.cfg.warehouses > 1 && rng.chance(0.15) {
            let base = self.cfg.warehouse_base;
            let mut other = base + rng.next_below(self.cfg.warehouses as u64) as u32;
            if other == w {
                other = base + (other - base + 1) % self.cfg.warehouses;
            }
            (other, rng.next_below(10) as u32)
        } else {
            (w, d)
        };
        let c = rng.next_below(3_000) as u32;
        Transaction::new(
            vec![
                LockNeed {
                    lock: ids::warehouse(w),
                    mode: LockMode::Exclusive,
                },
                LockNeed {
                    lock: ids::district(w, d),
                    mode: LockMode::Exclusive,
                },
                LockNeed {
                    lock: ids::customer(cw, cd, c),
                    mode: LockMode::Exclusive,
                },
            ],
            self.think(6),
        )
    }

    fn gen_order_status(&mut self, rng: &mut SimRng, w: u32) -> Transaction {
        let d = rng.next_below(10) as u32;
        let c = rng.next_below(3_000) as u32;
        let seq = if self.order_seq == 0 {
            0
        } else {
            rng.next_below(self.order_seq)
        };
        Transaction::new(
            vec![
                LockNeed {
                    lock: ids::customer(w, d, c),
                    mode: LockMode::Shared,
                },
                LockNeed {
                    lock: ids::order(w, d, seq),
                    mode: LockMode::Shared,
                },
            ],
            self.think(4),
        )
    }

    fn gen_delivery(&mut self, rng: &mut SimRng, w: u32) -> Transaction {
        let d = rng.next_below(10) as u32;
        let c = rng.next_below(3_000) as u32;
        let seq = if self.order_seq == 0 {
            0
        } else {
            rng.next_below(self.order_seq)
        };
        Transaction::new(
            vec![
                LockNeed {
                    lock: ids::district(w, d),
                    mode: LockMode::Exclusive,
                },
                LockNeed {
                    lock: ids::order(w, d, seq),
                    mode: LockMode::Exclusive,
                },
                LockNeed {
                    lock: ids::customer(w, d, c),
                    mode: LockMode::Exclusive,
                },
            ],
            self.think(15),
        )
    }

    fn gen_stock_level(&mut self, rng: &mut SimRng, w: u32) -> Transaction {
        let d = rng.next_below(10) as u32;
        let mut locks = vec![LockNeed {
            lock: ids::district(w, d),
            mode: LockMode::Shared,
        }];
        for _ in 0..20 {
            let item = rng.next_below(self.cfg.items as u64) as u32;
            locks.push(LockNeed {
                lock: ids::stock(w, item / self.cfg.stock_granularity),
                mode: LockMode::Shared,
            });
        }
        Transaction::new(locks, self.think(10))
    }
}

impl TxnSource for TpccSource {
    fn next_txn(&mut self, rng: &mut SimRng) -> Transaction {
        let w = self.cfg.warehouse_base + rng.next_below(self.cfg.warehouses as u64) as u32;
        let kind = Self::pick_kind(rng);
        let txn = match kind {
            TpccTxnKind::NewOrder => {
                self.counts[0] += 1;
                self.gen_new_order(rng, w)
            }
            TpccTxnKind::Payment => {
                self.counts[1] += 1;
                self.gen_payment(rng, w)
            }
            TpccTxnKind::OrderStatus => {
                self.counts[2] += 1;
                self.gen_order_status(rng, w)
            }
            TpccTxnKind::Delivery => {
                self.counts[3] += 1;
                self.gen_delivery(rng, w)
            }
            TpccTxnKind::StockLevel => {
                self.counts[4] += 1;
                self.gen_stock_level(rng, w)
            }
        };
        txn.with_tenant(self.cfg.tenant)
            .with_priority(self.cfg.priority)
    }
}

/// Analytic hot-lock statistics for the allocator.
///
/// Warehouses and districts are the contended rows (Payment takes
/// warehouse-X, NewOrder/Payment/Delivery take district-X); the
/// coarsened stock buckets carry most of the *request volume* (a
/// NewOrder takes 5–15 stock locks), so hosting them in the switch is
/// what lets it absorb the bulk of the traffic. Customers and order
/// rows stay cold and default-route to the servers.
///
/// `total_workers` bounds the contention `c_i` (a closed-loop system
/// cannot have more outstanding requests on one lock than workers).
pub fn hot_lock_stats(cfg: &TpccConfig, total_workers: u32, home_servers: usize) -> Vec<LockStats> {
    let workers = total_workers.max(1) as f64;
    let w_rate = 0.88 / cfg.warehouses as f64; // NewOrder-S + Payment-X
    let d_rate = 0.92 / (cfg.warehouses as f64 * 10.0);
    // Contention c_i = expected concurrent outstanding requests plus a
    // small burst slack; closed-loop workers spread over the lock space
    // rarely pile onto one row, and Algorithm 3 never needs more than
    // c_i slots. Underestimates are safe: the q1/q2 overflow protocol
    // absorbs bursts (§4.3).
    let c = |expected: f64, slack: u32| -> u32 {
        (expected.ceil() as u32 + slack).clamp(1, total_workers.max(1))
    };
    let w_c = c(workers * 0.9 / cfg.warehouses as f64, 4);
    let d_c = c(workers * 0.92 / (cfg.warehouses as f64 * 10.0), 2);
    let mut out = Vec::new();
    for w in cfg.warehouse_base..cfg.warehouse_base + cfg.warehouses {
        out.push(LockStats {
            lock: ids::warehouse(w),
            rate: w_rate,
            contention: w_c,
            home_server: (w as usize) % home_servers.max(1),
        });
        for d in 0..10 {
            out.push(LockStats {
                lock: ids::district(w, d),
                rate: d_rate,
                contention: d_c,
                home_server: (w as usize) % home_servers.max(1),
            });
        }
    }
    // Stock buckets: ~5.3 stock requests per transaction (4.5 NewOrder-X
    // + 0.8 StockLevel-S), spread uniformly over all buckets.
    let buckets_per_w = cfg.items.div_ceil(cfg.stock_granularity);
    let s_rate = 5.3 / (cfg.warehouses as f64 * buckets_per_w as f64);
    let s_c = c(
        workers * 5.3 / (cfg.warehouses as f64 * buckets_per_w as f64),
        3,
    );
    for w in cfg.warehouse_base..cfg.warehouse_base + cfg.warehouses {
        for b in 0..buckets_per_w {
            out.push(LockStats {
                lock: ids::stock(w, b),
                rate: s_rate,
                contention: s_c,
                home_server: (w as usize) % home_servers.max(1),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_roughly_matches_spec() {
        let mut src = TpccSource::new(TpccConfig::default());
        let mut rng = SimRng::new(9);
        for _ in 0..20_000 {
            let _ = src.next_txn(&mut rng);
        }
        let total: u64 = src.counts.iter().sum();
        let frac = |i: usize| src.counts[i] as f64 / total as f64;
        assert!((frac(0) - 0.45).abs() < 0.02, "NewOrder {}", frac(0));
        assert!((frac(1) - 0.43).abs() < 0.02, "Payment {}", frac(1));
        assert!((frac(2) - 0.04).abs() < 0.01, "OrderStatus {}", frac(2));
        assert!((frac(3) - 0.04).abs() < 0.01, "Delivery {}", frac(3));
        assert!((frac(4) - 0.04).abs() < 0.01, "StockLevel {}", frac(4));
    }

    #[test]
    fn new_order_shape() {
        let mut src = TpccSource::new(TpccConfig::default());
        let mut rng = SimRng::new(1);
        // Find a NewOrder.
        for _ in 0..100 {
            let before = src.counts[0];
            let txn = src.next_txn(&mut rng);
            if src.counts[0] > before {
                // warehouse S + district X + customer S + 5..=15 stock X + order X
                assert!(txn.lock_count() >= 9 && txn.lock_count() <= 19);
                let shared = txn
                    .locks
                    .iter()
                    .filter(|n| n.mode == LockMode::Shared)
                    .count();
                assert!(shared >= 2, "warehouse and customer are shared reads");
                return;
            }
        }
        panic!("no NewOrder generated in 100 txns");
    }

    #[test]
    fn high_contention_uses_fewer_warehouses() {
        let low = TpccConfig::low_contention(10);
        let high = TpccConfig::high_contention(10);
        assert_eq!(low.warehouses, 100);
        assert_eq!(high.warehouses, 10);
    }

    #[test]
    fn lock_regions_disjoint() {
        // The max of each region must stay below the next region's base.
        assert!(ids::warehouse(9_999).0 < ids::district(0, 0).0);
        assert!(ids::district(9_999, 9).0 < ids::customer(0, 0, 0).0);
        assert!(ids::customer(999, 9, 2_999).0 < ids::stock(0, 0).0);
        assert!(ids::stock(1_000, 99_999).0 < ids::order(0, 0, 0).0);
    }

    #[test]
    fn locks_sorted_within_txn() {
        let mut src = TpccSource::new(TpccConfig::default());
        let mut rng = SimRng::new(3);
        for _ in 0..500 {
            let txn = src.next_txn(&mut rng);
            for pair in txn.locks.windows(2) {
                assert!(pair[0].lock < pair[1].lock, "locks must be sorted");
            }
        }
    }

    #[test]
    fn hot_stats_cover_warehouses_and_districts() {
        let cfg = TpccConfig {
            warehouses: 4,
            ..Default::default()
        };
        let stats = hot_lock_stats(&cfg, 64, 2);
        // 11 hot rows + 10 stock buckets per warehouse.
        assert_eq!(stats.len(), 4 * (11 + 10));
        assert!(stats.iter().all(|s| s.contention >= 1));
        // Warehouse rows are hotter than district rows.
        let wh = stats.iter().find(|s| s.lock == ids::warehouse(0)).unwrap();
        let di = stats
            .iter()
            .find(|s| s.lock == ids::district(0, 0))
            .unwrap();
        assert!(wh.rate > di.rate);
    }

    #[test]
    fn deterministic_given_seed() {
        let gen = |seed| {
            let mut src = TpccSource::new(TpccConfig::default());
            let mut rng = SimRng::new(seed);
            (0..50).map(|_| src.next_txn(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(gen(5), gen(5));
    }
}
