//! Offline vendored shim of the slice of the `bytes` crate API this
//! workspace uses.
//!
//! The build environment has no access to crates.io (see README "Offline
//! builds"), so the external `bytes` dependency is replaced by this path
//! crate. [`Bytes`] here is a plain owned buffer with a read cursor — no
//! reference-counted zero-copy splitting — because the wire codec only
//! encodes into a fresh buffer and decodes front-to-back. The [`Buf`] /
//! [`BufMut`] trait surface matches upstream for the methods used.

use std::ops::{Deref, DerefMut};

/// Read access to a contiguous byte cursor (big-endian getters).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skip `n` bytes.
    ///
    /// # Panics
    /// If fewer than `n` bytes remain.
    fn advance(&mut self, n: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let c = self.chunk();
        let v = u64::from_be_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        self.advance(8);
        v
    }
}

/// Write access to a growable byte buffer (big-endian putters).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// An immutable byte buffer with a read cursor.
///
/// Upstream `Bytes` is cheaply cloneable shared storage; this shim simply
/// owns a `Vec<u8>` (clones copy), which is indistinguishable for the
/// codec and its tests.
#[derive(Clone, PartialEq, Eq, Default, Debug)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Unread length.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// A new buffer holding the sub-range `range` of the unread bytes.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes {
            data: self.chunk()[range].to_vec(),
            pos: 0,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.remaining(), "advance past end of buffer");
        self.pos += n;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of slice");
        *self = &self[n..];
    }
}

/// A mutable, growable byte buffer.
#[derive(Clone, PartialEq, Eq, Default, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(data: &[u8]) -> BytesMut {
        BytesMut {
            data: data.to_vec(),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(7);
        m.put_u16(0x1234);
        m.put_u32(0xDEAD_BEEF);
        m.put_u64(42);
        let mut b = m.freeze();
        assert_eq!(b.remaining(), 15);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16(), 0x1234);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64(), 42);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slice_and_index() {
        let mut m = BytesMut::from(&[1u8, 2, 3, 4][..]);
        m[0] = 9;
        let b = m.clone().freeze();
        assert_eq!(&b[..], &[9, 2, 3, 4]);
        let s = b.slice(1..3);
        assert_eq!(&s[..], &[2, 3]);
    }

    #[test]
    fn big_endian_layout() {
        let mut m = BytesMut::with_capacity(2);
        m.put_u16(0x4E4C);
        assert_eq!(&m[..], &[0x4E, 0x4C]);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn over_advance_panics() {
        let mut b = Bytes::from(vec![1u8]);
        b.advance(2);
    }
}
