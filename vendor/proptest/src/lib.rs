//! Offline vendored shim of the slice of the `proptest` crate API this
//! workspace uses.
//!
//! The build environment has no access to crates.io (see README "Offline
//! builds"), so the external `proptest` dev-dependency is replaced by
//! this path crate. It keeps the same authoring surface — the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`, range / tuple /
//! [`Just`] strategies, [`prop_oneof!`] and `prop::collection::vec` — but
//! the runner is deliberately simpler than upstream:
//!
//! - inputs are generated from a fixed seed per test (runs are
//!   deterministic and reproducible without a persistence file);
//! - there is no shrinking — a failing case reports the generated input
//!   via the panic message instead of minimizing it first.
//!
//! That trade keeps the shim small while preserving what the property
//! tests assert.

use std::fmt::Debug;

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// The generator handed to strategies.
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Deterministic generator for one test case.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        use rand::Rng;
        self.inner.next_u64()
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0);
        self.inner.random_range(0..bound)
    }
}

/// A value generator. The shim's analogue of upstream `Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate with a strategy derived from a first-stage value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Box the strategy (for heterogeneous collections).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy ([`any`]).
pub trait Arbitrary: Sized + Debug {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Bias toward structure: mix in boundary values so
                // small-width edge cases appear often.
                match rng.below(8) {
                    0 => 0,
                    1 => <$t>::MAX,
                    2 => 1,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        f64::from_bits(rng.next_u64())
    }
}

/// Strategy for an [`Arbitrary`] type.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy of unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                let v = (rng.next_u64() as u128 * span) >> 64;
                self.start + v as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128) - (start as u128) + 1;
                let v = (rng.next_u64() as u128 * span) >> 64;
                start + v as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// Uniform choice among boxed strategies (backs [`prop_oneof!`]).
pub struct Union<T> {
    /// The alternatives; one is chosen uniformly per generated value.
    pub options: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len());
        self.options[i].generate(rng)
    }
}

/// Runner configuration (`#![proptest_config(..)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Namespaced strategy constructors (`prop::collection`, ...).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// Strategy for `Vec`s whose length is drawn from `len` and whose
        /// elements come from `element`.
        pub struct VecStrategy<S> {
            element: S,
            len: std::ops::Range<usize>,
        }

        /// A `Vec` strategy: length in `len`, elements from `element`.
        pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = if self.len.start >= self.len.end {
                    self.len.start
                } else {
                    self.len.start + rng.below(self.len.end - self.len.start)
                };
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use super::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy,
    };
}

/// Assert inside a property body; reports the condition on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Skip the current generated case when its precondition does not hold.
///
/// The shim's `proptest!` runner executes the body inside a per-case
/// loop, so rejecting a case is just moving on to the next one.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union {
            options: vec![$($crate::Strategy::boxed($strat)),+],
        }
    };
}

/// Define property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_cfg ($cfg) $($rest)*);
    };
    (
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_cfg ($crate::ProptestConfig::default())
            $(#[$meta])* fn $name($($args)*) $body $($rest)*);
    };
    (@with_cfg ($cfg:expr)) => {};
    (
        @with_cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        // The workspace convention writes `#[test]` explicitly inside
        // `proptest!` blocks, so attributes pass through unchanged.
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            // Seed differs per property (by name) but is fixed across
            // runs: deterministic without a persistence file.
            let name_seed: u64 = stringify!($name)
                .bytes()
                .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                    (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
                });
            for case in 0..cfg.cases as u64 {
                let mut rng = $crate::TestRng::new(name_seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                $(let $pat = $crate::Strategy::generate(&$strat, &mut rng);)+
                $body
            }
        }
        $crate::proptest!(@with_cfg ($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn vec_respects_length_range() {
        let s = prop::collection::vec(0u32..10, 2..5);
        let mut rng = super::TestRng::new(1);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let s = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut rng = super::TestRng::new(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro wires patterns, strategies and bodies together.
        #[test]
        fn macro_generates_cases((a, b) in (0u8..10, 0u8..10), mut v in prop::collection::vec(any::<bool>(), 0..4)) {
            prop_assert!(a < 10 && b < 10);
            v.push(true);
            prop_assert_eq!(v.last(), Some(&true));
        }
    }
}
