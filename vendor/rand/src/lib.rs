//! Offline vendored shim of the small slice of the `rand` crate API this
//! workspace uses.
//!
//! The build environment for this repository has no access to crates.io
//! (see README "Offline builds"), so the external `rand` dependency is
//! replaced by this path crate. It implements exactly the surface the
//! workspace consumes — [`rngs::SmallRng`], [`Rng`], [`RngExt`] and
//! [`SeedableRng`] — on top of xoshiro256++, which is the same generator
//! family upstream `SmallRng` uses on 64-bit targets. Streams are
//! deterministic for a given seed, which is all the simulation requires
//! (it never relies on matching upstream `rand`'s exact byte streams).

/// Random number generator engines.
pub mod rngs {
    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::SmallRng;

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SmallRng {
    #[inline]
    fn next_raw(&mut self) -> u64 {
        // xoshiro256++ step.
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types that can construct a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> SmallRng {
        // Expand the seed with SplitMix64, as the xoshiro authors
        // recommend, so low-entropy seeds still give full-period state.
        let mut sm = seed;
        SmallRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

/// Core random number generation.
pub trait Rng {
    /// Next uniformly distributed `u64`.
    fn next_u64(&mut self) -> u64;

    /// Next uniformly distributed `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl Rng for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }
}

/// Sample a value of this type uniformly from a generator.
///
/// Mirrors `rand::distr::StandardUniform` sampling for the primitive
/// types the workspace draws.
pub trait SampleUniform: Sized {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl SampleUniform for f64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniform for u64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl SampleUniform for u32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl SampleUniform for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Bounded-range sampling for integer types.
pub trait RangeSample: Sized {
    /// Uniform value in `[start, end)`; `start < end` required.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

macro_rules! impl_range_sample {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            #[inline]
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start < end, "cannot sample empty range");
                let span = (end as u128) - (start as u128);
                // Widening-multiply rejection-free mapping (Lemire); the
                // tiny modulo bias over a u64 draw is irrelevant for
                // simulation workloads.
                let v = (rng.next_u64() as u128 * span) >> 64;
                start + v as $t
            }
        }
    )*};
}

impl_range_sample!(u8, u16, u32, u64, usize);

/// Convenience sampling methods (the `rand` 0.9+ method names).
pub trait RngExt: Rng {
    /// Sample a value of type `T` from its standard distribution.
    fn random<T: SampleUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in `[range.start, range.end)`.
    fn random_range<T: RangeSample>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = r.random_range(10..20);
            assert!((10..20).contains(&v));
            let i: usize = r.random_range(0..3);
            assert!(i < 3);
        }
    }

    #[test]
    fn unit_floats_in_range_and_varied() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
