//! Offline vendored shim of the slice of the `criterion` crate API this
//! workspace uses.
//!
//! The build environment has no access to crates.io (see README "Offline
//! builds"), so the external `criterion` dev-dependency is replaced by
//! this path crate. Benchmarks keep their authoring surface —
//! [`Criterion::benchmark_group`], `bench_function`, `bench_with_input`,
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros — but the runner is
//! a simple fixed-iteration timer printing mean wall-clock time per
//! iteration, with none of upstream's statistics, plots or reports.

use std::time::Instant;

/// Prevent the optimizer from discarding a value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost (accepted, not acted on).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// A benchmark identifier composed of a name and a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives the body of one benchmark.
pub struct Bencher {
    iters: u64,
    /// Mean nanoseconds per iteration of the last `iter*` call.
    last_ns: f64,
}

impl Bencher {
    /// Time `body` over a fixed number of iterations.
    pub fn iter<O>(&mut self, mut body: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(body());
        }
        self.last_ns = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }

    /// Time `body` with a fresh `setup()` input per iteration; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut body: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total_ns = 0u128;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(body(input));
            total_ns += start.elapsed().as_nanos();
        }
        self.last_ns = total_ns as f64 / self.iters as f64;
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    fn run(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            iters: self.criterion.iters,
            last_ns: 0.0,
        };
        f(&mut b);
        println!("bench {}/{id}: {:.1} ns/iter", self.name, b.last_ns);
    }

    /// Set the target sample count. The shim runs a fixed iteration
    /// budget, so this only exists for API compatibility.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        self.run(id, f);
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    /// Finish the group (upstream flushes reports here; a no-op).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // `cargo test` runs `harness = false` bench binaries too; keep
        // smoke runs cheap there and do real timing under `cargo bench`.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            iters: if test_mode { 1 } else { 20 },
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut group = BenchmarkGroup {
            name: "bench".to_string(),
            criterion: self,
        };
        group.run(id, f);
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
            b.iter_batched(
                || vec![1u64; n as usize],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion { iters: 2 };
        sample_bench(&mut c);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("knapsack", 10).to_string(), "knapsack/10");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
