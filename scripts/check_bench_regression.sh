#!/usr/bin/env bash
# Bench-regression smoke check for the simulator hot paths.
#
# Runs `bench_sim --quick` to a temp file and compares it against the
# committed BENCH_sim.json baseline. Fails if:
#   - allocs_per_packet > 0      (the packet path started allocating)
#   - txn_allocs_per_packet > 0  (the lowered transaction-IR grant path
#     started allocating; fresh run only, so older baselines without
#     the field stay valid)
#   - dataplane_ns_per_op        regressed > 25% vs the baseline
#   - the committed baseline's old_over_new < 1.0 at depths
#     64/1024/8192 (the calendar queue fell behind the inline heap —
#     the full-scale committed artifact is the acceptance gate)
#   - the fresh quick run's old_over_new < 0.9 at those depths (the
#     quick run is short and shallow depths are noisy, so it gets a
#     10% noise margin; a genuine regression lands far below it)
#   - packet_bytes > 48            (the event slot grew — every queue
#     move now copies more; mirrors the const assertion in
#     crates/core/tests/packet_size.rs)
#   - sim_events_per_sec < 0.6 × the committed baseline (whole-spine
#     rate through the public Simulator API; generous margin because
#     the quick run is short and machines differ — a real spine
#     regression like a lost fast path lands well below 0.6)
#   - sim_parallel_events_per_sec.best_paired_ratio < 0.95 (the
#     conservative-window loop at one worker must stay within 5% of the
#     *same scenario* on the fused serial loop; the gated value is the
#     best paired ratio across interleaved (serial_ref, workers_1)
#     runs, so machine noise — which hits both halves of a pair equally
#     — cannot fail the gate, while a real >5% per-event slowdown holds
#     every pair below 0.95; runs without the field fall back to
#     w1_over_ref, then workers_1 / serial_ref, then
#     workers_1 / sim_events_per_sec)
#   - w1_over_ref inconsistent with its own numerator/denominator: on
#     any report (fresh or baseline) that carries best_paired_ratio,
#     w1_over_ref must equal workers_1 / serial_ref to within rendering
#     tolerance — this is the self-consistency check that would have
#     caught the old bug where the field recorded the max paired ratio
#     (1.669) next to workers_1/serial_ref fields that implied 0.90
#   - sim_parallel_events_per_sec.workers_1 < 0.6 × the committed
#     baseline's (same cross-machine margin as the serial spine)
#   - agg_requests_per_sec < 1e6 (the batched aggregate-population path
#     must sustain >= 1M lock requests per wall-second on the 100K-
#     client shared-queue scenario; this box measures ~10M/s, so the
#     floor only trips on an order-of-magnitude loss like falling back
#     to per-request events; skipped for pre-v6 runs without the field)
#   - workers_max < 1.5 × workers_1 when the host has >= 4 cores (the
#     parallel windows must actually buy wall-clock on multi-rack
#     scenarios; skipped on small hosts where no speedup is possible)
#
# It then runs `dlock_bench --quick` (real-threads delegation backends
# over the server lock table) and fails if:
#   - the sequential lock-table calibration (seq_lock_table_ns_per_op /
#     calibrated_service_ns) is missing or absurd (<= 0 or > 100 µs)
#   - any of the three backends (mutex, flat_combining, ccsynch) is
#     missing or reports a point with non-positive throughput
#   - the mutex baseline's 1-thread hot/excl mean latency regressed
#     > 3x vs the committed BENCH_dlock.json (cross-machine smoke
#     margin, as for dataplane_ns_per_op)
#   - on a >= 4-core host where the quick ladder reaches >= 4 threads,
#     flat combining or CCSynch fails to beat the mutex baseline by
#     >= 1.5x on the contended hot/excl point (skipped on smaller
#     hosts, where oversubscription makes the comparison meaningless —
#     same policy as the workers_max gate)
#
# Absolute nanosecond numbers vary across machines; the 25% bound is a
# smoke threshold to catch order-of-magnitude mistakes (an accidental
# debug path, a reintroduced per-packet allocation made of time instead
# of memory), not a precision gate.
#
# Usage: scripts/check_bench_regression.sh  (expects release bench_sim
# built; override the binary dir with BIN_DIR=...)
set -euo pipefail
cd "$(dirname "$0")/.."

BIN_DIR=${BIN_DIR:-target/release}

out=$(mktemp)
"$BIN_DIR/bench_sim" "$out" --quick >/dev/null

dlock_out=$(mktemp)
"$BIN_DIR/dlock_bench" "$dlock_out" --quick >/dev/null

python3 - "$out" BENCH_sim.json "$dlock_out" BENCH_dlock.json <<'EOF'
import json, sys

new = json.load(open(sys.argv[1]))
base = json.load(open(sys.argv[2]))
dnew = json.load(open(sys.argv[3]))
dbase = json.load(open(sys.argv[4]))
fail = []

allocs = new["allocs_per_packet"]
if allocs > 0:
    fail.append(f"allocs_per_packet = {allocs} (must be 0)")

txn_allocs = new.get("txn_allocs_per_packet", 0)
if txn_allocs > 0:
    fail.append(f"txn_allocs_per_packet = {txn_allocs} (must be 0)")

agg = new.get("agg_requests_per_sec")
if agg is not None and agg < 1e6:
    fail.append(
        f"agg_requests_per_sec = {agg/1e6:.2f}M (batched aggregate path "
        f"must sustain >= 1M requests/s)"
    )

pkt = new.get("packet_bytes", 0)
if pkt > 48:
    fail.append(f"packet_bytes = {pkt} (event slot must stay <= 48)")

eps_new = new.get("sim_events_per_sec", 0.0)
eps_base = base.get("sim_events_per_sec", 0.0)
if eps_base > 0 and eps_new < eps_base * 0.6:
    fail.append(
        f"sim_events_per_sec regressed: {eps_new/1e6:.1f}M vs baseline "
        f"{eps_base/1e6:.1f}M (< 0.6x)"
    )

par_new = new.get("sim_parallel_events_per_sec", {})
par_base = base.get("sim_parallel_events_per_sec", {})
w1 = par_new.get("workers_1", 0.0)
wmax = par_new.get("workers_max", 0.0)
serial_ref = par_new.get("serial_ref", 0.0) or eps_new

# Self-consistency: wherever a report carries best_paired_ratio
# (schema >= 7), its w1_over_ref must be exactly the ratio of the
# workers_1 / serial_ref fields beside it (2% tolerance covers the
# 3-decimal JSON rendering).
for label, rep in (("fresh run", par_new), ("baseline", par_base)):
    if "best_paired_ratio" not in rep:
        continue
    recorded = rep.get("w1_over_ref", 0.0)
    ref, one = rep.get("serial_ref", 0.0), rep.get("workers_1", 0.0)
    if ref > 0 and one > 0 and recorded > 0:
        implied = one / ref
        if abs(recorded - implied) > 0.02 * implied:
            fail.append(
                f"{label}: w1_over_ref = {recorded:.3f} but workers_1 / "
                f"serial_ref = {implied:.3f} (field inconsistent with its "
                f"own numerator/denominator)"
            )

ratio = par_new.get("best_paired_ratio", 0.0) or par_new.get("w1_over_ref", 0.0)
if not ratio and w1 and serial_ref:
    ratio = w1 / serial_ref
if ratio and ratio < 0.95:
    fail.append(
        f"1-worker partitioned spine fell behind the fused serial loop on "
        f"the same scenario: best paired ratio {ratio:.3f} (< 0.95)"
    )
w1_base = par_base.get("workers_1", 0.0)
if w1_base > 0 and w1 < w1_base * 0.6:
    fail.append(
        f"sim_parallel_events_per_sec.workers_1 regressed: {w1/1e6:.1f}M vs "
        f"baseline {w1_base/1e6:.1f}M (< 0.6x)"
    )
cores = par_new.get("max_workers", 1)
if cores >= 4 and w1 and wmax < w1 * 1.5:
    fail.append(
        f"parallel windows bought no speedup on a {cores}-core host: "
        f"{wmax/1e6:.1f}M at {cores} workers vs {w1/1e6:.1f}M at 1 (< 1.5x)"
    )

# --- dlock: real-threads delegation backends -------------------------
seq_ns = dnew.get("seq_lock_table_ns_per_op", 0.0)
if not 0.0 < seq_ns < 100_000.0:
    fail.append(
        f"dlock seq_lock_table_ns_per_op = {seq_ns} (calibration input "
        f"missing or absurd)"
    )
cal_ns = dnew.get("calibrated_service_ns", 0.0)
if not 0.0 < cal_ns < 100_000.0:
    fail.append(f"dlock calibrated_service_ns = {cal_ns} (missing or absurd)")


def dlock_points(rep, backend):
    for b in rep.get("backends", []):
        if b.get("backend") == backend:
            return b.get("points", [])
    return []


def dlock_find(rep, backend, threads, dist, mix, cs):
    for p in dlock_points(rep, backend):
        if (
            p.get("threads") == threads
            and p.get("dist") == dist
            and p.get("mix") == mix
            and p.get("cs_spins") == cs
        ):
            return p
    return None


for backend in ("mutex", "flat_combining", "ccsynch"):
    pts = dlock_points(dnew, backend)
    if not pts:
        fail.append(f"dlock backend {backend} missing from fresh run")
        continue
    for p in pts:
        if p.get("mops", 0.0) <= 0.0 or p.get("ops", 0) <= 0:
            fail.append(
                f"dlock {backend} point threads={p.get('threads')} "
                f"dist={p.get('dist')} reports no throughput"
            )
            break

mlat_new = dlock_find(dnew, "mutex", 1, "hot", "excl", 0)
mlat_base = dlock_find(dbase, "mutex", 1, "hot", "excl", 0)
if mlat_new is None:
    fail.append("dlock fresh run lacks the 1-thread hot/excl mutex point")
elif mlat_base is not None:
    n, b = mlat_new.get("mean_ns", 0.0), mlat_base.get("mean_ns", 0.0)
    if b > 0 and n > b * 3.0:
        fail.append(
            f"dlock mutex 1-thread hot mean latency regressed: {n:.0f}ns vs "
            f"baseline {b:.0f}ns (> 3x)"
        )

dcont = dnew.get("contended", {})
dcores = dnew.get("threads_available", 1)
dcont_threads = dcont.get("threads", 1)
fc_x = dcont.get("fc_over_mutex", 0.0)
cc_x = dcont.get("cc_over_mutex", 0.0)
if dcores >= 4 and dcont_threads >= 4:
    if fc_x < 1.5:
        fail.append(
            f"flat combining only {fc_x:.2f}x mutex at {dcont_threads} "
            f"threads hot/excl on a {dcores}-core host (< 1.5x)"
        )
    if cc_x < 1.5:
        fail.append(
            f"ccsynch only {cc_x:.2f}x mutex at {dcont_threads} threads "
            f"hot/excl on a {dcores}-core host (< 1.5x)"
        )
    dlock_gate = f"fc {fc_x:.2f}x cc {cc_x:.2f}x mutex"
else:
    dlock_gate = f"speedup gate skipped ({dcores} cores)"

dp_new, dp_base = new["dataplane_ns_per_op"], base["dataplane_ns_per_op"]
if dp_new > dp_base * 1.25:
    fail.append(
        f"dataplane_ns_per_op regressed: {dp_new:.1f} vs baseline "
        f"{dp_base:.1f} (> 25%)"
    )

for point in base["queue_churn"]:
    if point["depth"] in (64, 1024, 8192) and point["old_over_new"] < 1.0:
        fail.append(
            f"committed baseline: calendar queue behind inline heap at depth "
            f"{point['depth']}: old_over_new = {point['old_over_new']:.3f}"
        )

for point in new["queue_churn"]:
    if point["depth"] in (64, 1024, 8192) and point["old_over_new"] < 0.9:
        fail.append(
            f"calendar queue lost to inline heap at depth {point['depth']}: "
            f"old_over_new = {point['old_over_new']:.3f} (noise margin 0.9)"
        )

if fail:
    for f in fail:
        print(f"FAIL  {f}")
    sys.exit(1)
print(
    f"ok    allocs_per_packet=0  txn_allocs_per_packet=0  packet_bytes={pkt}  "
    f"agg {(agg or 0)/1e6:.1f}M req/s  "
    f"spine {eps_new/1e6:.1f}M ev/s (baseline {eps_base/1e6:.1f}M)  "
    f"parallel ref {serial_ref/1e6:.1f}M w1 {w1/1e6:.1f}M "
    f"(paired {ratio:.2f}) wmax {wmax/1e6:.1f}M ({cores} cores)  "
    f"dataplane {dp_new:.1f}ns/op "
    f"(baseline {dp_base:.1f})  queue ratios "
    + " ".join(f"{p['old_over_new']:.2f}" for p in new["queue_churn"])
    + f"  dlock seq {seq_ns:.1f}ns/msg, {dlock_gate}"
)
EOF
