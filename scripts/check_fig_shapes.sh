#!/usr/bin/env bash
# Quick-scale smoke check for the figure harnesses.
#
# Runs every figure binary with --quick and compares the *shape* of
# its output — header lines, column structure, and row counts —
# against the committed full-scale results under results/, with all
# numeric fields normalized to `N`. Catches dropped columns, missing
# sweep points, and reordered sections without requiring a full-scale
# (minutes-long) regeneration.
#
# Usage: scripts/check_fig_shapes.sh  (expects release binaries built;
# override the binary dir with BIN_DIR=...)
set -euo pipefail
cd "$(dirname "$0")/.."

BIN_DIR=${BIN_DIR:-target/release}

norm() { sed -E 's/-?[0-9]+(\.[0-9]+)?(e-?[0-9]+)?/N/g' "$1"; }

fail=0
for fig in fig08 fig09 fig10 fig11 fig12 fig13 fig14 fig15 flash_crowd tenant_churn; do
  out=$(mktemp)
  "$BIN_DIR/$fig" --quick >"$out"
  if [ "$fig" = fig13 ] || [ "$fig" = flash_crowd ] || [ "$fig" = tenant_churn ]; then
    # fig13's CDF tail is downsampled from measured latencies, so its
    # row count is data-dependent; compare the collapsed sequence of
    # distinct normalized line shapes instead of raw row counts. The
    # aggregate-population scenarios run fewer racks/intervals at quick
    # scale, so they get the same collapsed-shape treatment.
    a=$(norm "$out" | uniq)
    b=$(norm "results/$fig.tsv" | uniq)
  else
    a=$(norm "$out")
    b=$(norm "results/$fig.tsv")
  fi
  if [ "$a" = "$b" ]; then
    echo "ok   $fig"
  else
    echo "FAIL $fig: quick-scale output shape diverged from results/$fig.tsv" >&2
    diff <(printf '%s\n' "$b") <(printf '%s\n' "$a") | head -20 >&2 || true
    fail=1
  fi
  rm -f "$out"
done
exit $fail
